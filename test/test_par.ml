(* The parallel runtime: parallel_map/iter must agree with the sequential
   Array functions at every jobs setting, preserve element order, propagate
   exceptions, and survive pool reuse and shutdown. *)

let check_map_matches jobs () =
  let pool = Par.create ~jobs () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  List.iter
    (fun n ->
       let input = Array.init n (fun i -> i) in
       let expected = Array.map (fun i -> i * i + 1) input in
       let got = Par.parallel_map pool (fun i -> (i * i) + 1) input in
       Alcotest.(check (array int))
         (Printf.sprintf "jobs=%d n=%d" jobs n)
         expected got)
    [ 0; 1; 2; 7; 64; 1000 ]

let test_iter_covers () =
  let pool = Par.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  let n = 500 in
  let seen = Array.make n 0 in
  (* each slot written exactly once: distinct indices, no races on a slot *)
  Par.parallel_iter pool (fun i -> seen.(i) <- seen.(i) + 1) (Array.init n Fun.id);
  Alcotest.(check (array int)) "each index visited once" (Array.make n 1) seen

let test_exception_propagates () =
  let pool = Par.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  Alcotest.check_raises "body exception re-raised in caller"
    (Failure "boom")
    (fun () ->
       ignore
         (Par.parallel_map pool
            (fun i -> if i = 13 then failwith "boom" else i)
            (Array.init 64 Fun.id)));
  (* the pool stays usable after a failed fan-out *)
  let got = Par.parallel_map pool (fun i -> i + 1) (Array.init 16 Fun.id) in
  Alcotest.(check (array int)) "pool usable after failure"
    (Array.init 16 (fun i -> i + 1)) got

let test_pool_reuse () =
  let pool = Par.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  for round = 1 to 50 do
    let got = Par.parallel_map pool (fun i -> i * round) (Array.init 32 Fun.id) in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init 32 (fun i -> i * round))
      got
  done

let test_sequential_pool () =
  (* jobs <= 1 never spawns domains and still computes correctly *)
  let got = Par.parallel_map Par.sequential (fun i -> i - 3) (Array.init 10 Fun.id) in
  Alcotest.(check (array int)) "sequential pool"
    (Array.init 10 (fun i -> i - 3)) got;
  Alcotest.(check int) "sequential jobs" 1 (Par.jobs Par.sequential)

let test_shutdown_degrades () =
  let pool = Par.create ~jobs:4 () in
  Par.shutdown pool;
  (* after shutdown the pool degrades to caller-only execution *)
  let got = Par.parallel_map pool (fun i -> i * 2) (Array.init 20 Fun.id) in
  Alcotest.(check (array int)) "works after shutdown"
    (Array.init 20 (fun i -> i * 2)) got;
  Par.shutdown pool (* idempotent *)

let test_with_pool_bracket () =
  let got =
    Par.with_pool ~jobs:3 (fun pool ->
        Par.parallel_map pool (fun i -> i + 1) (Array.init 10 Fun.id))
  in
  Alcotest.(check (array int)) "result passes through"
    (Array.init 10 (fun i -> i + 1)) got

let test_with_pool_shuts_on_raise () =
  let leaked = ref None in
  (try
     Par.with_pool ~jobs:4 (fun pool ->
         leaked := Some pool;
         failwith "boom")
   with Failure _ -> ());
  match !leaked with
  | None -> Alcotest.fail "body never ran"
  | Some pool ->
    (* shutdown already happened: the pool has no workers left and has
       degraded to caller-only execution (jobs reports 1, calls stay valid) *)
    Alcotest.(check int) "workers joined despite the raise" 1 (Par.jobs pool);
    let got = Par.parallel_map pool (fun i -> i * 2) (Array.init 8 Fun.id) in
    Alcotest.(check (array int)) "degraded pool still computes"
      (Array.init 8 (fun i -> i * 2)) got

let test_tasks_counter () =
  let pool = Par.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  let before = Par.tasks_run pool in
  ignore (Par.parallel_map pool Fun.id (Array.init 25 Fun.id));
  Alcotest.(check int) "tasks counted" (before + 25) (Par.tasks_run pool)

exception Tagged of int

let test_lowest_index_exception () =
  (* several bodies fail concurrently: the exception that surfaces must be
     the one sequential execution would have hit — the lowest failing
     index — whatever the schedule. Repeat to shake out racy schedules. *)
  let pool = Par.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  for _ = 1 to 100 do
    match
      Par.parallel_map pool
        (fun i -> if i mod 7 = 3 then raise (Tagged i) else i)
        (Array.init 200 Fun.id)
    with
    | _ -> Alcotest.fail "expected a failure"
    | exception Tagged i ->
      Alcotest.(check int) "lowest failing index surfaces" 3 i
  done;
  (* sequential pools take the same path *)
  (match
     Par.parallel_map Par.sequential
       (fun i -> if i >= 5 then raise (Tagged i) else i)
       (Array.init 10 Fun.id)
   with
   | _ -> Alcotest.fail "expected a failure"
   | exception Tagged i -> Alcotest.(check int) "sequential agrees" 5 i)

let test_parallel_levels () =
  let pool = Par.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  let levels = [| [| 0; 1; 2 |]; [||]; [| 3 |]; [| 4; 5; 6; 7 |] |] in
  let trace = ref [] in
  let out =
    Par.parallel_levels pool
      ~before_level:(fun li items ->
          trace := Printf.sprintf "before %d (%d)" li (Array.length items) :: !trace)
      ~after_level:(fun li results ->
          trace := Printf.sprintf "after %d (%d)" li (Array.length results) :: !trace)
      (fun i -> i * 10)
      levels
  in
  Alcotest.(check (array (array int))) "per-level results in order"
    [| [| 0; 10; 20 |]; [||]; [| 30 |]; [| 40; 50; 60; 70 |] |] out;
  Alcotest.(check (list string)) "hooks bracket each level in order"
    [ "before 0 (3)"; "after 0 (3)"; "before 1 (0)"; "after 1 (0)";
      "before 2 (1)"; "after 2 (1)"; "before 3 (4)"; "after 3 (4)" ]
    (List.rev !trace)

let test_parallel_levels_barrier () =
  (* a level's bodies may read state published by after_level of every
     earlier level: the inter-level barrier makes that safe *)
  let pool = Par.create ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Par.shutdown pool) @@ fun () ->
  let published = Hashtbl.create 16 in
  let levels = Array.init 6 (fun l -> Array.init (l + 1) (fun i -> (l, i))) in
  let out =
    Par.parallel_levels pool
      ~after_level:(fun _ results ->
          Array.iter (fun (k, v) -> Hashtbl.replace published k v) results)
      (fun (l, i) ->
         (* sum over all previous levels' published values *)
         let prev = ref 0 in
         for pl = 0 to l - 1 do
           for pi = 0 to pl do
             prev := !prev + Hashtbl.find published (pl, pi)
           done
         done;
         ((l, i), (i + 1) + !prev))
      levels
  in
  (* compare against a straight sequential evaluation *)
  let expect = Hashtbl.create 16 in
  Array.iteri
    (fun l items ->
       Array.iteri
         (fun i _ ->
            let prev = ref 0 in
            for pl = 0 to l - 1 do
              for pi = 0 to pl do prev := !prev + Hashtbl.find expect (pl, pi) done
            done;
            Hashtbl.replace expect (l, i) ((i + 1) + !prev))
         items)
    levels;
  Array.iter
    (Array.iter (fun (k, v) ->
         Alcotest.(check int) "wavefront value matches sequential"
           (Hashtbl.find expect k) v))
    out

let suite =
  [ Alcotest.test_case "map matches sequential (jobs=1)" `Quick (check_map_matches 1);
    Alcotest.test_case "map matches sequential (jobs=2)" `Quick (check_map_matches 2);
    Alcotest.test_case "map matches sequential (jobs=4)" `Quick (check_map_matches 4);
    Alcotest.test_case "iter covers every index once" `Quick test_iter_covers;
    Alcotest.test_case "exceptions propagate; pool survives" `Quick test_exception_propagates;
    Alcotest.test_case "pool reuse across many fan-outs" `Quick test_pool_reuse;
    Alcotest.test_case "sequential pool" `Quick test_sequential_pool;
    Alcotest.test_case "shutdown degrades to sequential" `Quick test_shutdown_degrades;
    Alcotest.test_case "with_pool brackets create/shutdown" `Quick test_with_pool_bracket;
    Alcotest.test_case "with_pool shuts the pool when the body raises" `Quick
      test_with_pool_shuts_on_raise;
    Alcotest.test_case "tasks_run counter" `Quick test_tasks_counter;
    Alcotest.test_case "lowest failing index's exception surfaces" `Quick
      test_lowest_index_exception;
    Alcotest.test_case "parallel_levels: order, hooks, empty levels" `Quick
      test_parallel_levels;
    Alcotest.test_case "parallel_levels: inter-level barrier publishes" `Quick
      test_parallel_levels_barrier ]
