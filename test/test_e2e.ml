(* End-to-end integration (experiment E11): every workload query is parsed,
   optimized through the full pipeline (including the XML MEMO interface),
   executed distributed on the appliance, and compared against the serial
   single-node reference execution. The baseline plan must also execute to
   the same result. *)

let t name f = Alcotest.test_case name `Quick f

let canonical cols result = Engine.Local.canonical ~cols:(List.map snd cols) result
let _ = canonical

let check_query (w : Opdw.Workload.t) qid =
  let q = Option.get (Tpch.Queries.find qid) in
  let r = Opdw.optimize w.Opdw.Workload.shell q.Tpch.Queries.sql in
  let app = w.Opdw.Workload.app in
  Engine.Appliance.reset_account app;
  let dist = Opdw.run app r in
  let reference = Option.get (Opdw.run_reference app r) in
  let cols = List.map snd (Opdw.output_columns r) in
  Alcotest.(check (list string))
    (qid ^ ": distributed == reference")
    (Engine.Local.canonical ~cols reference)
    (Engine.Local.canonical ~cols dist);
  (match Opdw.run_baseline app r with
   | Some b ->
     Alcotest.(check (list string))
       (qid ^ ": baseline == reference")
       (Engine.Local.canonical ~cols reference)
       (Engine.Local.canonical ~cols b)
   | None -> Alcotest.fail (qid ^ ": baseline did not parallelize"));
  r

let test_query w qid () = ignore (check_query w qid)

let test_top_n_order (w : Opdw.Workload.t) () =
  (* ORDER BY ... TOP results come back in order, not only as multisets *)
  let r =
    Opdw.optimize w.Opdw.Workload.shell
      "SELECT TOP 5 o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC"
  in
  let res = Opdw.run w.Opdw.Workload.app r in
  Alcotest.(check int) "five rows" 5 (List.length res.Engine.Local.rows);
  let prices =
    List.map
      (fun row -> Catalog.Value.to_float row.(1))
      res.Engine.Local.rows
  in
  let sorted = List.sort (fun a b -> compare b a) prices in
  Alcotest.(check (list (float 1e-9))) "descending" sorted prices

let test_via_xml_equals_direct (w : Opdw.Workload.t) () =
  (* the XML interface must not change the chosen plan's cost *)
  let sql = (Option.get (Tpch.Queries.find "Q3")).Tpch.Queries.sql in
  let node_count = Catalog.Shell_db.node_count w.Opdw.Workload.shell in
  let with_xml via_xml =
    let options = { (Opdw.default_options ~node_count) with Opdw.via_xml } in
    let r = Opdw.optimize ~options w.Opdw.Workload.shell sql in
    (Opdw.plan r).Pdwopt.Pplan.dms_cost
  in
  Alcotest.(check (float 1e-12)) "same cost either way" (with_xml false) (with_xml true)

let test_empty_result (w : Opdw.Workload.t) () =
  let r =
    Opdw.optimize w.Opdw.Workload.shell
      "SELECT c_name FROM customer WHERE c_acctbal > 100 AND c_acctbal < 50"
  in
  let res = Opdw.run w.Opdw.Workload.app r in
  Alcotest.(check int) "contradiction yields empty" 0 (List.length res.Engine.Local.rows)

let test_single_node_appliance () =
  (* the degenerate 1-node appliance must also work *)
  let w = Opdw.Workload.tpch ~node_count:1 ~sf:0.001 () in
  let r =
    Opdw.optimize w.Opdw.Workload.shell
      "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey"
  in
  let dist = Opdw.run w.Opdw.Workload.app r in
  let reference = Option.get (Opdw.run_reference w.Opdw.Workload.app r) in
  let cols = List.map snd (Opdw.output_columns r) in
  Alcotest.(check (list string)) "1-node correctness"
    (Engine.Local.canonical ~cols reference)
    (Engine.Local.canonical ~cols dist)

let test_many_nodes () =
  let w = Opdw.Workload.tpch ~node_count:16 ~sf:0.001 () in
  let q = Option.get (Tpch.Queries.find "Q3") in
  let r = Opdw.optimize w.Opdw.Workload.shell q.Tpch.Queries.sql in
  let dist = Opdw.run w.Opdw.Workload.app r in
  let reference = Option.get (Opdw.run_reference w.Opdw.Workload.app r) in
  let cols = List.map snd (Opdw.output_columns r) in
  Alcotest.(check (list string)) "16-node correctness"
    (Engine.Local.canonical ~cols reference)
    (Engine.Local.canonical ~cols dist)

let test_dsql_steps_executable (w : Opdw.Workload.t) () =
  (* a DSQL plan exists for every query, its last step is Return, and it has
     one DMS step per movement *)
  List.iter
    (fun q ->
       let r = Opdw.optimize w.Opdw.Workload.shell q.Tpch.Queries.sql in
       let steps = r.Opdw.dsql.Dsql.Generate.steps in
       Alcotest.(check bool) (q.Tpch.Queries.id ^ ": has steps") true (steps <> []);
       (match List.rev steps with
        | Dsql.Generate.Return_step _ :: _ -> ()
        | _ -> Alcotest.fail "last step must be Return");
       let dms_steps =
         List.length
           (List.filter (function Dsql.Generate.Dms_step _ -> true | _ -> false) steps)
       in
       Alcotest.(check bool)
         (q.Tpch.Queries.id ^ ": step count vs moves")
         true
         (dms_steps <= Pdwopt.Pplan.move_count (Opdw.plan r)))
    Tpch.Queries.all

let suite =
  let w = Lazy.force Fixtures.tpch_workload in
  List.map (fun q -> t ("query " ^ q.Tpch.Queries.id) (test_query w q.Tpch.Queries.id))
    Tpch.Queries.all
  @ [ t "TOP-N ordering preserved" (test_top_n_order w);
      t "XML interface neutral" (test_via_xml_equals_direct w);
      t "contradictory query returns empty" (test_empty_result w);
      t "single-node appliance" test_single_node_appliance;
      t "sixteen-node appliance" test_many_nodes;
      t "DSQL plans well-formed" (test_dsql_steps_executable w) ]
