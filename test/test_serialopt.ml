(* The serial Cascades-lite optimizer: exploration, implementation, winner
   extraction, budget/timeout behaviour. *)

open Algebra

let t name f = Alcotest.test_case name `Quick f

let optimize ?opts ?seeds sql =
  let sh = Fixtures.shell () in
  let r = Algebra.Algebrizer.of_sql sh sql in
  let tr = Normalize.normalize r.Algebrizer.reg sh r.Algebrizer.tree in
  (r, Serialopt.Optimizer.optimize ?opts ?seeds r.Algebrizer.reg sh tr)

let rec plan_ops (p : Serialopt.Plan.t) =
  p.Serialopt.Plan.op :: List.concat_map plan_ops p.Serialopt.Plan.children

let test_commute_generates_both_orders () =
  let _, res = optimize "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey" in
  let m = res.Serialopt.Optimizer.memo in
  (* the join group holds Join(a,b) and Join(b,a) *)
  let joins =
    let acc = ref 0 in
    Memo.iter_groups m (fun g ->
        List.iter
          (fun (e : Memo.gexpr) ->
             match e.Memo.op with
             | Memo.Logical (Relop.Join { kind = Relop.Inner; _ }) -> incr acc
             | _ -> ())
          g.Memo.exprs);
    !acc
  in
  Alcotest.(check bool) "commuted alternative present" true (joins >= 2)

let test_assoc_generates_orders () =
  let _, res =
    optimize
      "SELECT c_custkey FROM customer, orders, lineitem \
       WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
  in
  let m = res.Serialopt.Optimizer.memo in
  (* with 3 relations, exploration creates new join groups beyond the
     initial (unexplored) space *)
  let opts = { Serialopt.Optimizer.default_options with Serialopt.Optimizer.task_budget = 0 } in
  let _, unexplored =
    optimize ~opts
      "SELECT c_custkey FROM customer, orders, lineitem \
       WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
  in
  Alcotest.(check bool) "more groups than unexplored space" true
    (Memo.ngroups m > Memo.ngroups unexplored.Serialopt.Optimizer.memo)

let test_plan_extracted () =
  let _, res = optimize "SELECT c_name FROM customer WHERE c_acctbal > 0" in
  match res.Serialopt.Optimizer.best with
  | Some p ->
    Alcotest.(check bool) "has scan" true
      (List.exists
         (function Memo.Physop.Table_scan _ -> true | _ -> false)
         (plan_ops p));
    Alcotest.(check bool) "positive cost" true (p.Serialopt.Plan.cost > 0.)
  | None -> Alcotest.fail "no plan"

let test_small_build_side () =
  (* hash join: the optimizer should build on the small side (customer is
     10x smaller than orders in the fixture) *)
  let _, res = optimize "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey" in
  let p = Option.get res.Serialopt.Optimizer.best in
  let rec find_join (p : Serialopt.Plan.t) =
    match p.Serialopt.Plan.op with
    | Memo.Physop.Hash_join _ -> Some p
    | _ -> List.find_map find_join p.Serialopt.Plan.children
  in
  match find_join p with
  | Some j ->
    let l = List.nth j.Serialopt.Plan.children 0
    and r = List.nth j.Serialopt.Plan.children 1 in
    Alcotest.(check bool) "build (right) side is the smaller input" true
      (r.Serialopt.Plan.card <= l.Serialopt.Plan.card)
  | None -> Alcotest.fail "no hash join in plan"

let test_merge_join_sorts_inputs () =
  let opts =
    { Serialopt.Optimizer.default_options with Serialopt.Optimizer.enable_merge_join = true }
  in
  let _, res =
    optimize ~opts "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey"
  in
  let p = Option.get res.Serialopt.Optimizer.best in
  (* if a merge join was chosen, its children must provide sort order via
     explicit sorts (enforcers); just verify the plan is well-formed and the
     memo contains the merge alternative *)
  ignore p;
  let m = res.Serialopt.Optimizer.memo in
  let has_merge = ref false in
  Memo.iter_groups m (fun g ->
      List.iter
        (fun (e : Memo.gexpr) ->
           match e.Memo.op with
           | Memo.Physical (Memo.Physop.Merge_join _) -> has_merge := true
           | _ -> ())
        g.Memo.exprs);
  Alcotest.(check bool) "merge join implemented" true !has_merge

let test_budget_zero_keeps_initial_plan () =
  let opts = { Serialopt.Optimizer.default_options with Serialopt.Optimizer.task_budget = 0 } in
  let _, res =
    optimize ~opts
      "SELECT c_custkey FROM customer, orders, lineitem \
       WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
  in
  Alcotest.(check bool) "budget exhausted flagged" true
    res.Serialopt.Optimizer.budget_exhausted;
  Alcotest.(check bool) "still produces a plan" true
    (res.Serialopt.Optimizer.best <> None)

let test_budget_monotone_space () =
  let run budget =
    let opts = { Serialopt.Optimizer.default_options with Serialopt.Optimizer.task_budget = budget } in
    let _, res =
      optimize ~opts
        "SELECT c_custkey FROM customer, orders, lineitem \
         WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
    in
    Memo.total_exprs res.Serialopt.Optimizer.memo
  in
  Alcotest.(check bool) "bigger budget explores at least as much" true (run 1000 >= run 2)

let test_seeding_merges_root () =
  let sh = Fixtures.shell () in
  let r =
    Algebra.Algebrizer.of_sql sh
      "SELECT c_custkey FROM customer, orders WHERE c_custkey = o_custkey"
  in
  let tr = Normalize.normalize r.Algebrizer.reg sh r.Algebrizer.tree in
  (* seed with the identical tree: must not break anything *)
  let res = Serialopt.Optimizer.optimize ~seeds:[ tr ] r.Algebrizer.reg sh tr in
  Alcotest.(check bool) "plan extracted with seed" true (res.Serialopt.Optimizer.best <> None)

let test_cost_consistency () =
  (* child cost never exceeds parent cumulative cost *)
  let _, res = optimize (Option.get (Tpch.Queries.find "Q3")).Tpch.Queries.sql in
  let p = Option.get res.Serialopt.Optimizer.best in
  let rec check (p : Serialopt.Plan.t) =
    List.iter
      (fun (c : Serialopt.Plan.t) ->
         Alcotest.(check bool) "monotone cumulative cost" true
           (c.Serialopt.Plan.cost <= p.Serialopt.Plan.cost);
         check c)
      p.Serialopt.Plan.children
  in
  check p

let test_workload_all_plannable () =
  List.iter
    (fun q ->
       let _, res = optimize q.Tpch.Queries.sql in
       Alcotest.(check bool) ("plan for " ^ q.Tpch.Queries.id) true
         (res.Serialopt.Optimizer.best <> None))
    Tpch.Queries.all

let test_sort_enforcer_at_root () =
  let _, res = optimize "SELECT c_name FROM customer ORDER BY c_name" in
  let p = Option.get res.Serialopt.Optimizer.best in
  Alcotest.(check bool) "top-level sort present" true
    (match p.Serialopt.Plan.op with Memo.Physop.Sort_op _ -> true | _ -> false)

let suite =
  [ t "join commutativity" test_commute_generates_both_orders;
    t "join associativity grows the space" test_assoc_generates_orders;
    t "plan extraction" test_plan_extracted;
    t "hash join builds on small side" test_small_build_side;
    t "merge join alternative implemented" test_merge_join_sorts_inputs;
    t "zero budget keeps initial plan" test_budget_zero_keeps_initial_plan;
    t "budget monotone search space" test_budget_monotone_space;
    t "seeding merges into root" test_seeding_merges_root;
    t "cumulative costs monotone" test_cost_consistency;
    t "whole workload plannable" test_workload_all_plannable;
    t "sort enforcer at root" test_sort_enforcer_at_root ]
