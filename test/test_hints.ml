(* Query hints (paper §3.1): OPTION (BROADCAST t | SHUFFLE t | FORCE ORDER). *)

let t name f = Alcotest.test_case name `Quick f

let w () = Lazy.force Fixtures.tpch_workload

let opt sql = Opdw.optimize (w ()).Opdw.Workload.shell sql

let test_parse_hints () =
  let q =
    Sqlfront.Parser.parse
      "SELECT a FROM t OPTION (BROADCAST t, SHUFFLE u, FORCE ORDER)"
  in
  Alcotest.(check int) "three hints" 3 (List.length q.Sqlfront.Ast.hints);
  match q.Sqlfront.Ast.hints with
  | [ Sqlfront.Ast.Hint_broadcast "t"; Sqlfront.Ast.Hint_shuffle "u";
      Sqlfront.Ast.Hint_force_order ] -> ()
  | _ -> Alcotest.fail "hint shapes"

let test_bad_hint_rejected () =
  match Sqlfront.Parser.parse "SELECT a FROM t OPTION (NONSENSE x)" with
  | exception Sqlfront.Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "unknown hint must be rejected"

let base_sql = "SELECT c_custkey, o_orderdate FROM orders, customer WHERE o_custkey = c_custkey"

let moves sql = Pdwopt.Pplan.moves (Opdw.plan (opt sql))

let test_broadcast_hint_forces_broadcast () =
  let kinds = moves (base_sql ^ " OPTION (BROADCAST orders)") in
  Alcotest.(check bool) "orders broadcast" true
    (List.exists (function Dms.Op.Broadcast -> true | _ -> false) kinds)

let test_shuffle_hint_forbids_broadcast () =
  (* without hints this query broadcasts small customer; forcing SHUFFLE on
     customer removes its replicated options *)
  let unhinted = moves base_sql in
  let hinted = moves (base_sql ^ " OPTION (SHUFFLE customer)") in
  Alcotest.(check bool) "unhinted uses broadcast" true
    (List.exists (function Dms.Op.Broadcast -> true | _ -> false) unhinted);
  Alcotest.(check bool) "hinted avoids broadcasting customer" true
    (List.for_all (function Dms.Op.Broadcast -> false | _ -> true) hinted)

let test_hinted_result_still_correct () =
  List.iter
    (fun sql ->
       let r = opt sql in
       let wl = w () in
       let dist = Opdw.run wl.Opdw.Workload.app r in
       let reference = Option.get (Opdw.run_reference wl.Opdw.Workload.app r) in
       let cols = List.map snd (Opdw.output_columns r) in
       Alcotest.(check (list string)) ("correct: " ^ sql)
         (Engine.Local.canonical ~cols reference)
         (Engine.Local.canonical ~cols dist))
    [ base_sql ^ " OPTION (BROADCAST orders)";
      base_sql ^ " OPTION (SHUFFLE customer)";
      base_sql ^ " OPTION (FORCE ORDER)" ]

let test_force_order_disables_exploration () =
  let sql =
    "SELECT c_name FROM customer, orders, lineitem \
     WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey"
  in
  let r = opt (sql ^ " OPTION (FORCE ORDER)") in
  Alcotest.(check bool) "budget exhausted immediately" true
    r.Opdw.serial.Serialopt.Optimizer.budget_exhausted;
  let r' = opt sql in
  Alcotest.(check bool) "unhinted explores" true
    (Memo.total_exprs r'.Opdw.memo >= Memo.total_exprs r.Opdw.memo)

let test_unsatisfiable_hint_ignored () =
  (* a hint on an alias that does not appear is simply ignored *)
  let r = opt (base_sql ^ " OPTION (BROADCAST nosuchtable)") in
  Alcotest.(check bool) "plan still produced" true (Pdwopt.Pplan.size (Opdw.plan r) > 0)

let suite =
  [ t "parse OPTION clause" test_parse_hints;
    t "bad hint rejected" test_bad_hint_rejected;
    t "BROADCAST hint honoured" test_broadcast_hint_forces_broadcast;
    t "SHUFFLE hint honoured" test_shuffle_hint_forbids_broadcast;
    t "hinted plans remain correct" test_hinted_result_still_correct;
    t "FORCE ORDER disables exploration" test_force_order_disables_exploration;
    t "unsatisfiable hint ignored" test_unsatisfiable_hint_ignored ]
