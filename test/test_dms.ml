(* DMS layer: distribution properties, the 7 movement operations, and the
   lambda cost model's structure (paper §3.3, Fig. 5). *)

open Dms

let t name f = Alcotest.test_case name `Quick f

let h cols = Distprop.Hashed cols
let equi = [ (1, 11); (2, 12) ]

let test_hash_compat () =
  Alcotest.(check bool) "matching single" true (Distprop.hash_compatible ~equi [ 1 ] [ 11 ]);
  Alcotest.(check bool) "matching pair" true
    (Distprop.hash_compatible ~equi [ 1; 2 ] [ 11; 12 ]);
  Alcotest.(check bool) "misaligned pair" false
    (Distprop.hash_compatible ~equi [ 1; 2 ] [ 12; 11 ]);
  Alcotest.(check bool) "length mismatch" false
    (Distprop.hash_compatible ~equi [ 1 ] [ 11; 12 ]);
  Alcotest.(check bool) "unequated columns" false
    (Distprop.hash_compatible ~equi [ 3 ] [ 11 ]);
  Alcotest.(check bool) "empty lists never compatible" false
    (Distprop.hash_compatible ~equi [] [])

let test_join_local_inner () =
  let jl = Distprop.join_local ~kind:Algebra.Relop.Inner ~equi in
  Alcotest.(check bool) "collocated" true (jl (h [ 1 ]) (h [ 11 ]) = Some (h [ 1 ]));
  Alcotest.(check bool) "incompatible hashes" true (jl (h [ 1 ]) (h [ 12 ]) = None);
  Alcotest.(check bool) "hash x replicated" true
    (jl (h [ 1 ]) Distprop.Replicated = Some (h [ 1 ]));
  Alcotest.(check bool) "replicated x hash ok for inner" true
    (jl Distprop.Replicated (h [ 11 ]) = Some (h [ 11 ]));
  Alcotest.(check bool) "repl x repl" true
    (jl Distprop.Replicated Distprop.Replicated = Some Distprop.Replicated);
  Alcotest.(check bool) "single x single" true
    (jl Distprop.Single_node Distprop.Single_node = Some Distprop.Single_node)

let test_join_local_semi () =
  let jl k = Distprop.join_local ~kind:k ~equi in
  (* a replicated LEFT input would duplicate semi/anti/outer results *)
  List.iter
    (fun k ->
       Alcotest.(check bool) "replicated left rejected" true
         (jl k Distprop.Replicated (h [ 11 ]) = None);
       Alcotest.(check bool) "replicated right fine" true
         (jl k (h [ 1 ]) Distprop.Replicated = Some (h [ 1 ])))
    Algebra.Relop.[ Semi; Anti_semi; Left_outer ]

(* [Hashed []] is the distributed-unknown sentinel: it is distributed on
   *some* columns, so no hash-alignment argument is ever allowed on it. The
   static analyzer (lib/check) leans on these corners. *)
let test_hashed_unknown_corners () =
  let jl = Distprop.join_local ~kind:Algebra.Relop.Inner ~equi in
  Alcotest.(check bool) "unknown x unknown never collocated" true
    (jl (h []) (h []) = None);
  Alcotest.(check bool) "hashed x unknown never collocated" true
    (jl (h [ 1 ]) (h []) = None);
  Alcotest.(check bool) "unknown x hashed never collocated" true
    (jl (h []) (h [ 11 ]) = None);
  Alcotest.(check bool) "unknown x replicated is local, stays unknown" true
    (jl (h []) Distprop.Replicated = Some (h []));
  Alcotest.(check bool) "group-by over unknown needs movement" true
    (Distprop.groupby_local ~keys:[ 1 ] (h []) = None);
  Alcotest.(check bool) "scalar aggregate over hashed needs movement" true
    (Distprop.groupby_local ~keys:[] (h [ 1 ]) = None);
  Alcotest.(check bool) "hash_compatible rejects unknown on either side" true
    (not (Distprop.hash_compatible ~equi [] [ 11 ])
     && not (Distprop.hash_compatible ~equi [ 1 ] []))

let test_groupby_local () =
  Alcotest.(check bool) "hash cols subset of keys" true
    (Distprop.groupby_local ~keys:[ 1; 2 ] (h [ 1 ]) = Some (h [ 1 ]));
  Alcotest.(check bool) "hash cols not subset" true
    (Distprop.groupby_local ~keys:[ 2 ] (h [ 1 ]) = None);
  Alcotest.(check bool) "unknown partitioning" true
    (Distprop.groupby_local ~keys:[ 1 ] (h []) = None);
  Alcotest.(check bool) "replicated ok" true
    (Distprop.groupby_local ~keys:[] Distprop.Replicated = Some Distprop.Replicated)

let test_op_transitions () =
  let check_out k d expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s applied" (Op.name k))
      true
      (match Op.output_dist k d, expected with
       | Some a, Some b -> Distprop.equal a b
       | None, None -> true
       | _ -> false)
  in
  check_out (Op.Shuffle [ 5 ]) (h [ 1 ]) (Some (h [ 5 ]));
  check_out (Op.Shuffle [ 5 ]) Distprop.Single_node (Some (h [ 5 ]));
  check_out (Op.Shuffle [ 5 ]) Distprop.Replicated None;
  check_out Op.Partition_move (h [ 1 ]) (Some Distprop.Single_node);
  check_out Op.Partition_move Distprop.Replicated None;
  check_out Op.Control_node_move Distprop.Single_node (Some Distprop.Replicated);
  check_out Op.Broadcast (h [ 1 ]) (Some Distprop.Replicated);
  check_out Op.Broadcast Distprop.Replicated None;
  check_out (Op.Trim [ 5 ]) Distprop.Replicated (Some (h [ 5 ]));
  check_out (Op.Trim [ 5 ]) (h [ 1 ]) None;
  check_out Op.Replicated_broadcast Distprop.Single_node (Some Distprop.Replicated);
  check_out Op.Remote_copy (h [ 1 ]) (Some Distprop.Single_node);
  check_out Op.Remote_copy Distprop.Replicated (Some Distprop.Single_node);
  check_out Op.Remote_copy Distprop.Single_node None

let test_all_transitions_one_move () =
  (* every (src, dst) pair of distinct distribution properties is reachable
     with a single movement *)
  let dists = [ h [ 1 ]; h [ 5 ]; Distprop.Replicated; Distprop.Single_node ] in
  List.iter
    (fun src ->
       List.iter
         (fun dst ->
            if not (Distprop.equal src dst) then begin
              let interesting = match dst with Distprop.Hashed c -> [ c ] | _ -> [] in
              let moves = Op.moves_to ~interesting src dst in
              Alcotest.(check bool)
                (Printf.sprintf "%s -> %s reachable" (Distprop.short_string src)
                   (Distprop.short_string dst))
                true (moves <> [])
            end)
         dists)
    dists

(* -- cost model -- *)

let cost k ~rows ~width = (Cost.cost k ~nodes:8 ~rows ~width).Cost.c_total

let test_cost_max_structure () =
  let b = Cost.cost (Op.Shuffle [ 1 ]) ~nodes:8 ~rows:10000. ~width:50. in
  Alcotest.(check (float 1e-12)) "source = max(reader, network)"
    (Float.max b.Cost.c_reader b.Cost.c_network) b.Cost.c_source;
  Alcotest.(check (float 1e-12)) "target = max(writer, blkcpy)"
    (Float.max b.Cost.c_writer b.Cost.c_blkcpy) b.Cost.c_target;
  Alcotest.(check (float 1e-12)) "total = max(source, target)"
    (Float.max b.Cost.c_source b.Cost.c_target) b.Cost.c_total

let test_cost_linear_in_bytes () =
  let c1 = cost (Op.Shuffle [ 1 ]) ~rows:1000. ~width:10. in
  let c2 = cost (Op.Shuffle [ 1 ]) ~rows:2000. ~width:10. in
  let c3 = cost (Op.Shuffle [ 1 ]) ~rows:1000. ~width:20. in
  Alcotest.(check (float 1e-12)) "doubling rows doubles cost" (2. *. c1) c2;
  Alcotest.(check (float 1e-12)) "doubling width doubles cost" (2. *. c1) c3

let test_shuffle_scales_with_nodes () =
  let c8 = (Cost.cost (Op.Shuffle [ 1 ]) ~nodes:8 ~rows:8000. ~width:10.).Cost.c_total in
  let c16 = (Cost.cost (Op.Shuffle [ 1 ]) ~nodes:16 ~rows:8000. ~width:10.).Cost.c_total in
  Alcotest.(check bool) "more nodes -> cheaper shuffle" true (c16 < c8)

let test_broadcast_vs_shuffle_crossover () =
  (* shuffle moves Y*w/N, broadcast writes Y*w everywhere: broadcast of a
     small table beats shuffling a big one, and vice versa *)
  let small_bcast = cost Op.Broadcast ~rows:100. ~width:10. in
  let big_shuffle = cost (Op.Shuffle [ 1 ]) ~rows:100000. ~width:10. in
  Alcotest.(check bool) "broadcast small < shuffle big" true (small_bcast < big_shuffle);
  let big_bcast = cost Op.Broadcast ~rows:100000. ~width:10. in
  let small_shuffle = cost (Op.Shuffle [ 1 ]) ~rows:100. ~width:10. in
  Alcotest.(check bool) "shuffle small < broadcast big" true (small_shuffle < big_bcast)

let test_trim_no_network () =
  let b = Cost.cost (Op.Trim [ 1 ]) ~nodes:8 ~rows:1000. ~width:10. in
  Alcotest.(check (float 0.)) "trim is network-free" 0. b.Cost.c_network

let test_hash_reader_premium () =
  let sh = Cost.cost (Op.Shuffle [ 1 ]) ~nodes:8 ~rows:1000. ~width:10. in
  let pm = Cost.cost Op.Partition_move ~nodes:8 ~rows:1000. ~width:10. in
  Alcotest.(check bool) "hashing reader costs more than direct" true
    (sh.Cost.c_reader > pm.Cost.c_reader)

(* calibration *)
let test_calibrate_exact_linear () =
  let lambda = 2.5e-9 in
  let samples =
    List.map (fun b -> { Calibrate.bytes = b; seconds = lambda *. b })
      [ 1e3; 1e4; 1e5; 1e6 ]
  in
  let fitted = Calibrate.fit_lambda samples in
  Alcotest.(check (float 1e-15)) "exact fit" lambda fitted;
  Alcotest.(check (float 1e-9)) "zero residual" 0. (Calibrate.fit_error fitted samples)

let test_calibrate_with_overhead () =
  (* per-row overhead makes the relationship affine; the fit should land
     between the pure slope and slope+overhead *)
  let samples =
    List.map
      (fun b -> { Calibrate.bytes = b; seconds = (1e-9 *. b) +. 1e-4 })
      [ 1e5; 1e6; 1e7 ]
  in
  let fitted = Calibrate.fit_lambda samples in
  Alcotest.(check bool) "slope above pure rate" true (fitted > 1e-9);
  Alcotest.(check bool) "positive residual" true (Calibrate.fit_error fitted samples > 0.)

let prop_cost_monotone_rows =
  QCheck.Test.make ~name:"cost monotone in rows" ~count:200
    QCheck.(pair (QCheck.make QCheck.Gen.(float_range 1. 1e6)) (QCheck.make QCheck.Gen.(float_range 1. 1e6)))
    (fun (r1, r2) ->
       let lo = Float.min r1 r2 and hi = Float.max r1 r2 in
       List.for_all
         (fun k -> cost k ~rows:lo ~width:10. <= cost k ~rows:hi ~width:10. +. 1e-15)
         [ Op.Shuffle [ 1 ]; Op.Partition_move; Op.Broadcast; Op.Trim [ 1 ];
           Op.Remote_copy ])

let suite =
  [ t "hash compatibility" test_hash_compat;
    t "local inner joins" test_join_local_inner;
    t "local semi/anti/outer joins" test_join_local_semi;
    t "local group-by" test_groupby_local;
    t "Hashed [] (distributed-unknown) corners" test_hashed_unknown_corners;
    t "movement transitions" test_op_transitions;
    t "all transitions reachable in one move" test_all_transitions_one_move;
    t "cost max-structure (Fig. 5)" test_cost_max_structure;
    t "cost linear in bytes" test_cost_linear_in_bytes;
    t "shuffle scales with N" test_shuffle_scales_with_nodes;
    t "broadcast/shuffle crossover" test_broadcast_vs_shuffle_crossover;
    t "trim has no network cost" test_trim_no_network;
    t "hash-reader premium" test_hash_reader_premium;
    t "calibration: exact linear fit" test_calibrate_exact_linear;
    t "calibration: affine data" test_calibrate_with_overhead;
    QCheck_alcotest.to_alcotest prop_cost_monotone_rows ]
