(* The fault-injection plane and the engine's recovery layer. The core
   invariant under test: for any fault plan that does not exhaust a retry
   or replan budget, the recovered run returns rows identical to the
   fault-free run — and when a budget IS exhausted the statement fails
   with a structured [Fault.Exhausted], never with wrong rows. Draws are
   pure hashes of (seed, site, epoch, step, node, attempt), so the fault
   pattern — and the simulated clock — must reproduce exactly at any
   [--jobs] setting. *)

let t name f = Alcotest.test_case name `Quick f

(* a dedicated workload: chaos runs decommission nodes and swap fault
   plans, which must never disturb the shared fixture appliance *)
let w = lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.001 ())

let join_sql =
  "SELECT c_custkey, o_orderdate FROM orders, customer WHERE o_custkey = c_custkey"

(* fault-free oracle: canonical rows + simulated seconds *)
let fault_free ?options sql =
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  Engine.Appliance.set_fault app Fault.none;
  Engine.Appliance.reset_account app;
  let r = Opdw.optimize ?options wl.Opdw.Workload.shell sql in
  let res = Opdw.run app r in
  let cols = List.map snd (Opdw.output_columns r) in
  (Engine.Local.canonical ~cols res,
   app.Engine.Appliance.account.Engine.Appliance.sim_time)

(* one statement through the chaos driver; always restores the shared
   appliance to a clean fault-free state afterwards *)
let chaos ?cache fault sql =
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  Fun.protect
    ~finally:(fun () ->
        Engine.Appliance.set_fault app Fault.none;
        Engine.Appliance.reset_account app)
  @@ fun () ->
  Engine.Appliance.reset_account app;
  let ctx = Opdw.Chaos.create ?cache ~fault wl.Opdw.Workload.shell app in
  let r, res = Opdw.Chaos.run ctx sql in
  let cols = List.map snd (Opdw.output_columns r) in
  (* snapshot the account: the finally above resets the live record *)
  let a = (Opdw.Chaos.app ctx).Engine.Appliance.account in
  let acct = { a with Engine.Appliance.injected = a.Engine.Appliance.injected } in
  (Engine.Local.canonical ~cols res, acct, Opdw.Chaos.nodes ctx)

(* -- the pure plane: names, backoff, schedules, draws -- *)

let test_site_names () =
  List.iter
    (fun s ->
       Alcotest.(check bool)
         ("round-trip " ^ Fault.site_name s)
         true
         (Fault.site_of_name (Fault.site_name s) = Some s))
    Fault.all_sites;
  Alcotest.(check bool) "unknown site" true (Fault.site_of_name "nope" = None)

let test_backoff () =
  let p = { Fault.retries = 4; backoff_base = 0.05; backoff_mult = 2.0 } in
  Alcotest.(check (float 1e-12)) "retry 1" 0.05 (Fault.backoff p 1);
  Alcotest.(check (float 1e-12)) "retry 2" 0.1 (Fault.backoff p 2);
  Alcotest.(check (float 1e-12)) "retry 3" 0.2 (Fault.backoff p 3)

let test_schedule_parse () =
  let evs =
    Fault.parse_schedule
      "# transient on the second step, then a crash\n\
       site=dms_transfer step=2 attempt=1\n\
       \n\
       site=node_crash step=0 node=1 epoch=0\n\
       site=straggler step=1 factor=8.0\n"
  in
  (match evs with
   | [ a; b; c ] ->
     Alcotest.(check bool) "site a" true (a.Fault.e_site = Fault.Dms_transfer);
     Alcotest.(check int) "step a" 2 a.Fault.e_step;
     Alcotest.(check int) "attempt a" 1 a.Fault.e_attempt;
     Alcotest.(check bool) "node a any" true (a.Fault.e_node = None);
     Alcotest.(check bool) "site b" true (b.Fault.e_site = Fault.Node_crash);
     Alcotest.(check bool) "node b" true (b.Fault.e_node = Some 1);
     Alcotest.(check (float 1e-12)) "factor c" 8.0 c.Fault.e_factor
   | _ -> Alcotest.fail "expected 3 events");
  let rejects what text =
    match Fault.parse_schedule text with
    | _ -> Alcotest.fail ("accepted " ^ what)
    | exception Fault.Schedule_error _ -> ()
  in
  rejects "missing step" "site=dms_transfer";
  rejects "missing site" "step=3";
  rejects "unknown site" "site=disk_melt step=0";
  rejects "unknown field" "site=temp_write step=0 color=red";
  rejects "bad int" "site=temp_write step=abc";
  (* the error names the offending line and quotes its raw text *)
  (match
     Fault.parse_schedule "site=dms_transfer step=1\nsite=disk_melt step=0\n"
   with
   | _ -> Alcotest.fail "accepted unknown site"
   | exception Fault.Schedule_error msg ->
     let contains needle =
       Alcotest.(check bool)
         (Printf.sprintf "%S mentions %S" msg needle)
         true
         (let nl = String.length needle and ml = String.length msg in
          let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
          go 0)
     in
     contains "line 2";
     contains "site=disk_melt step=0")

let test_schedule_fires () =
  let plan = Fault.schedule [ Fault.event Fault.Dms_transfer 2 ] in
  let fires ~site ~step ~node ~attempt =
    Fault.fires plan ~site ~epoch:0 ~step ~node ~attempt
  in
  Alcotest.(check bool) "matching point" true
    (fires ~site:Fault.Dms_transfer ~step:2 ~node:(-1) ~attempt:0);
  Alcotest.(check bool) "any node matches" true
    (fires ~site:Fault.Dms_transfer ~step:2 ~node:3 ~attempt:0);
  Alcotest.(check bool) "wrong attempt" false
    (fires ~site:Fault.Dms_transfer ~step:2 ~node:(-1) ~attempt:1);
  Alcotest.(check bool) "wrong step" false
    (fires ~site:Fault.Dms_transfer ~step:1 ~node:(-1) ~attempt:0);
  Alcotest.(check bool) "wrong site" false
    (fires ~site:Fault.Temp_write ~step:2 ~node:(-1) ~attempt:0);
  let pinned = Fault.schedule [ Fault.event ~node:1 Fault.Node_crash 0 ] in
  Alcotest.(check bool) "pinned node hits" true
    (Fault.fires pinned ~site:Fault.Node_crash ~epoch:0 ~step:0 ~node:1 ~attempt:0);
  Alcotest.(check bool) "pinned node misses others" false
    (Fault.fires pinned ~site:Fault.Node_crash ~epoch:0 ~step:0 ~node:0 ~attempt:0)

let test_seeded_draws_pure () =
  let plan = Fault.seeded ~seed:42 ~rate:0.5 () in
  let grid p =
    List.concat_map
      (fun site ->
         List.concat_map
           (fun step ->
              List.map
                (fun node ->
                   Fault.fires p ~site ~epoch:0 ~step ~node ~attempt:0)
                [ -1; 0; 1; 2; 3 ])
           [ 0; 1; 2; 3; 4; 5 ])
      Fault.all_sites
  in
  Alcotest.(check (list bool)) "same seed, same pattern" (grid plan) (grid plan);
  let other = Fault.seeded ~seed:43 ~rate:0.5 () in
  Alcotest.(check bool) "different seed, different pattern" false
    (grid plan = grid other);
  Alcotest.(check bool) "rate 0 never fires" true
    (List.for_all not (grid (Fault.seeded ~seed:42 ~rate:0. ())))

(* -- recovery: transient faults retry and converge on the same rows -- *)

(* events for every recoverable transient site at every step, attempt 0
   only: each injectable step fails exactly once, then its retry runs
   clean — the strongest "retries are idempotent" probe *)
let first_attempt_storm =
  Fault.schedule
    (List.concat_map
       (fun step ->
          [ Fault.event Fault.Dms_transfer step;
            Fault.event Fault.Temp_write step;
            Fault.event Fault.Control_transient step ])
       (List.init 12 Fun.id))

let test_transient_recovery () =
  let base_rows, base_sim = fault_free join_sql in
  let rows, acct, nodes = chaos first_attempt_storm join_sql in
  Alcotest.(check (list string)) "rows identical after recovery" base_rows rows;
  Alcotest.(check int) "no node lost" 4 nodes;
  Alcotest.(check bool) "faults fired" true (acct.Engine.Appliance.injected > 0);
  Alcotest.(check int) "every failure retried"
    acct.Engine.Appliance.injected acct.Engine.Appliance.retries;
  Alcotest.(check int) "every step recovered"
    acct.Engine.Appliance.injected acct.Engine.Appliance.recovered;
  Alcotest.(check bool) "backoff charged" true
    (acct.Engine.Appliance.backoff_time > 0.);
  Alcotest.(check bool) "retries slow the simulated clock" true
    (acct.Engine.Appliance.sim_time > base_sim)

let test_budget_exhaustion () =
  (* the same fault at every attempt: the step can never succeed *)
  let persistent =
    Fault.schedule
      (List.concat_map
         (fun step ->
            List.map
              (fun attempt -> Fault.event ~attempt Fault.Temp_write step)
              (List.init 10 Fun.id))
         (List.init 12 Fun.id))
  in
  match chaos persistent join_sql with
  | _ -> Alcotest.fail "persistent fault should exhaust the retry budget"
  | exception Fault.Exhausted { failure; attempts } ->
    Alcotest.(check bool) "failure names the site" true
      (failure.Fault.site = Fault.Temp_write);
    Alcotest.(check int) "budget spent: retries + first attempt"
      (Fault.default_policy.Fault.retries + 1) attempts

let test_node_crash_replans () =
  let base_rows, _ = fault_free join_sql in
  let crash = Fault.schedule [ Fault.event ~node:1 Fault.Node_crash 0 ] in
  let rows, acct, nodes = chaos crash join_sql in
  Alcotest.(check int) "one node decommissioned" 3 nodes;
  Alcotest.(check int) "one replan" 1 acct.Engine.Appliance.replans;
  Alcotest.(check (list string)) "rows identical on 3 nodes" base_rows rows

let test_straggler_inflates_clock () =
  let base_rows, base_sim = fault_free join_sql in
  let slow = Fault.schedule [ Fault.event ~factor:32.0 Fault.Straggler 0 ] in
  let rows, acct, _ = chaos slow join_sql in
  Alcotest.(check (list string)) "rows unaffected" base_rows rows;
  Alcotest.(check bool) "straggler counted" true
    (acct.Engine.Appliance.injected > 0);
  Alcotest.(check int) "no retries for a slow node" 0
    acct.Engine.Appliance.retries;
  Alcotest.(check bool) "simulated time inflated" true
    (acct.Engine.Appliance.sim_time > base_sim)

let test_reset_account_uniform () =
  let wl = Lazy.force w in
  let a = wl.Opdw.Workload.app.Engine.Appliance.account in
  a.Engine.Appliance.injected <- 3;
  a.Engine.Appliance.retries <- 2;
  a.Engine.Appliance.recovered <- 2;
  a.Engine.Appliance.replans <- 1;
  a.Engine.Appliance.backoff_time <- 0.7;
  a.Engine.Appliance.sim_time <- 9.9;
  Engine.Appliance.reset_account wl.Opdw.Workload.app;
  Alcotest.(check int) "injected" 0 a.Engine.Appliance.injected;
  Alcotest.(check int) "retries" 0 a.Engine.Appliance.retries;
  Alcotest.(check int) "recovered" 0 a.Engine.Appliance.recovered;
  Alcotest.(check int) "replans" 0 a.Engine.Appliance.replans;
  Alcotest.(check (float 0.)) "backoff_time" 0. a.Engine.Appliance.backoff_time;
  Alcotest.(check (float 0.)) "sim_time" 0. a.Engine.Appliance.sim_time

(* -- the DSQL interpreter drops half-written temps before retrying -- *)

let test_dsql_exec_recovers () =
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  let r = Opdw.optimize wl.Opdw.Workload.shell join_sql in
  let clean_run fault =
    Fun.protect
      ~finally:(fun () ->
          Engine.Appliance.set_fault app Fault.none;
          Engine.Appliance.reset_account app)
    @@ fun () ->
    Engine.Appliance.set_fault app fault;
    Engine.Appliance.reset_account app;
    Engine.Local.canonical (Engine.Dsql_exec.run app r.Opdw.dsql)
  in
  let base = clean_run Fault.none in
  let faulty = clean_run first_attempt_storm in
  Alcotest.(check (list string)) "dsql rows identical after recovery" base faulty

(* -- determinism: fixed seed reproduces the run at any jobs setting -- *)

let test_seeded_determinism_across_jobs () =
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  let fault = Fault.seeded ~seed:5 ~rate:0.2 () in
  let run_at jobs =
    Par.with_pool ~jobs @@ fun pool ->
    Fun.protect
      ~finally:(fun () -> Engine.Appliance.set_pool app Par.sequential)
    @@ fun () ->
    Engine.Appliance.set_pool app pool;
    let rows, acct, nodes = chaos fault join_sql in
    (rows, acct.Engine.Appliance.sim_time, acct.Engine.Appliance.bytes_moved,
     acct.Engine.Appliance.injected, acct.Engine.Appliance.retries,
     acct.Engine.Appliance.recovered, acct.Engine.Appliance.replans, nodes)
  in
  let seq = run_at 1 and par = run_at 4 in
  Alcotest.(check bool)
    "jobs=1 == jobs=4 (rows, sim clock, bytes, fault counters)" true
    (seq = par)

(* -- property: random schedules either recover to identical rows or
      fail with Exhausted — never wrong rows -- *)

let arb_schedule =
  let open QCheck in
  let gen =
    Gen.(
      list_size (int_range 1 10)
        (let* site = oneofl Fault.all_sites in
         let* step = int_range 0 6 in
         let* attempt = int_range 0 2 in
         let* node = opt (int_range 0 3) in
         let* factor = float_range 2. 8. in
         return (Fault.event ?node ~attempt ~factor site step)))
  in
  let print evs =
    String.concat "; "
      (List.map
         (fun e ->
            Printf.sprintf "%s step=%d att=%d node=%s"
              (Fault.site_name e.Fault.e_site) e.Fault.e_step e.Fault.e_attempt
              (match e.Fault.e_node with None -> "*" | Some n -> string_of_int n))
         evs)
  in
  QCheck.make ~print gen

let prop_random_schedule_never_wrong =
  QCheck.Test.make ~name:"random schedule: identical rows or Exhausted, never wrong"
    ~count:30 arb_schedule
    (fun evs ->
       let base_rows, _ = fault_free join_sql in
       match chaos (Fault.schedule evs) join_sql with
       | rows, _, _ ->
         if rows <> base_rows then
           QCheck.Test.fail_report "recovered run returned different rows";
         true
       | exception Fault.Exhausted _ -> true)

(* -- acceptance: every bundled query, three seeds, identical rows -- *)

let test_all_queries_under_seeds () =
  let cache = Opdw.cache () in
  List.iter
    (fun (q : Tpch.Queries.t) ->
       let base_rows, _ = fault_free q.Tpch.Queries.sql in
       List.iter
         (fun seed ->
            let rows, _, _ =
              chaos ~cache (Fault.seeded ~seed ~rate:0.05 ()) q.Tpch.Queries.sql
            in
            Alcotest.(check (list string))
              (Printf.sprintf "%s seed %d" q.Tpch.Queries.id seed)
              base_rows rows)
         [ 11; 12; 13 ])
    Tpch.Queries.all

let suite =
  [ t "site names round-trip" test_site_names;
    t "backoff schedule" test_backoff;
    t "schedule parser" test_schedule_parse;
    t "schedule-driven fires" test_schedule_fires;
    t "seeded draws are pure" test_seeded_draws_pure;
    t "transient faults retry to identical rows" test_transient_recovery;
    t "persistent fault exhausts the budget" test_budget_exhaustion;
    t "node crash replans onto N-1 nodes" test_node_crash_replans;
    t "straggler inflates the clock only" test_straggler_inflates_clock;
    t "reset_account zeroes fault counters" test_reset_account_uniform;
    t "dsql interpreter recovers temp writes" test_dsql_exec_recovers;
    t "fixed seed reproduces at jobs 1 and 4" test_seeded_determinism_across_jobs;
    QCheck_alcotest.to_alcotest prop_random_schedule_never_wrong;
    t "all bundled queries x 3 seeds" test_all_queries_under_seeds ]
