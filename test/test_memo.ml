(* The MEMO structure: insertion, dedup, group merging, logical properties,
   and the XML interchange round trip. *)

open Algebra

let t name f = Alcotest.test_case name `Quick f

let build sql =
  let sh = Fixtures.shell () in
  let r = Algebra.Algebrizer.of_sql sh sql in
  let tr = Normalize.normalize r.Algebrizer.reg sh r.Algebrizer.tree in
  (r.Algebrizer.reg, sh, Memo.of_tree r.Algebrizer.reg sh tr)

let test_insert_dedup () =
  let _, _, m =
    build "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey"
  in
  let before_groups = Memo.ngroups m and before_exprs = Memo.total_exprs m in
  (* re-inserting an existing expression must be a no-op *)
  let g = Memo.root m in
  let e = List.hd (Memo.exprs m g) in
  let g' = Memo.insert m e.Memo.op e.Memo.children in
  Alcotest.(check int) "same group" (Memo.find m g) (Memo.find m g');
  Alcotest.(check int) "no new groups" before_groups (Memo.ngroups m);
  Alcotest.(check int) "no new exprs" before_exprs (Memo.total_exprs m)

let test_shared_subtrees_dedup () =
  (* the same Get used twice in one query (Q20's duplicated part subtree)
     lands in a single group *)
  let reg, sh, _ = build "SELECT c_name FROM customer" in
  ignore reg;
  let r = Algebra.Algebrizer.of_sql sh "SELECT c_name FROM customer WHERE c_acctbal > 0" in
  let tr = Normalize.normalize r.Algebrizer.reg sh r.Algebrizer.tree in
  let m = Memo.of_tree r.Algebrizer.reg sh tr in
  (* inserting the same tree twice: all groups deduplicate *)
  let n1 = Memo.ngroups m in
  let g2 = Memo.insert_tree m tr in
  Alcotest.(check int) "identical tree dedups fully" n1 (Memo.ngroups m);
  Alcotest.(check int) "same root group" (Memo.root m) (Memo.find m g2)

let test_group_merge () =
  let _, _, m = build "SELECT c_name FROM customer" in
  let ga = Memo.root m in
  (* make a distinct group then merge it *)
  let gb =
    Memo.insert m
      (Memo.Logical (Relop.Empty (Registry.Col_set.elements (Memo.props m ga).Memo.cols)))
      [||]
  in
  Alcotest.(check bool) "distinct before merge" true (Memo.find m ga <> Memo.find m gb);
  Memo.merge_groups m ga gb;
  Alcotest.(check int) "merged" (Memo.find m ga) (Memo.find m gb);
  let exprs = Memo.exprs m ga in
  Alcotest.(check bool) "expressions combined" true (List.length exprs >= 2)

let test_props_cardinality () =
  let _, _, m =
    build "SELECT c_name FROM customer WHERE c_acctbal > 999999999"
  in
  let root_card = (Memo.props m (Memo.root m)).Memo.card in
  Alcotest.(check bool) "selective filter reduces estimate" true (root_card < 300.)

let test_props_cols () =
  let _, _, m = build "SELECT c_custkey, c_name FROM customer" in
  Alcotest.(check int) "root outputs 2 cols" 2
    (Registry.Col_set.cardinal (Memo.props m (Memo.root m)).Memo.cols)

let test_width () =
  let _, _, m = build "SELECT c_custkey FROM customer" in
  let w = (Memo.props m (Memo.root m)).Memo.width in
  Alcotest.(check (float 0.01)) "int key is 8 bytes" 8.0 w

(* -- XML round trip -- *)

let roundtrip m sh =
  let xml = Memo.Memo_xml.export_string m in
  let m2 = Memo.Memo_xml.import_string sh xml in
  (xml, m2)

let test_xml_roundtrip_counts () =
  List.iter
    (fun q ->
       let sh = Fixtures.shell () in
       let r = Algebra.Algebrizer.of_sql sh q.Tpch.Queries.sql in
       let tr = Normalize.normalize r.Algebrizer.reg sh r.Algebrizer.tree in
       let res = Serialopt.Optimizer.optimize r.Algebrizer.reg sh tr in
       let m = res.Serialopt.Optimizer.memo in
       let _, m2 = roundtrip m sh in
       Alcotest.(check int)
         ("exprs preserved: " ^ q.Tpch.Queries.id)
         (Memo.total_exprs m) (Memo.total_exprs m2);
       (* props preserved at the root *)
       let p1 = Memo.props m (Memo.root m) and p2 = Memo.props m2 (Memo.root m2) in
       Alcotest.(check (float 0.001)) "card preserved" p1.Memo.card p2.Memo.card;
       Alcotest.(check (float 0.001)) "width preserved" p1.Memo.width p2.Memo.width;
       Alcotest.(check int) "cols preserved"
         (Registry.Col_set.cardinal p1.Memo.cols)
         (Registry.Col_set.cardinal p2.Memo.cols))
    [ Option.get (Tpch.Queries.find "P1");
      Option.get (Tpch.Queries.find "Q3");
      Option.get (Tpch.Queries.find "Q20") ]

let test_xml_registry_roundtrip () =
  let sh = Fixtures.shell () in
  let r = Algebra.Algebrizer.of_sql sh "SELECT c_custkey, c_name FROM customer" in
  let tr = Normalize.normalize r.Algebrizer.reg sh r.Algebrizer.tree in
  let m = Memo.of_tree r.Algebrizer.reg sh tr in
  let _, m2 = roundtrip m sh in
  let reg1 = m.Memo.reg and reg2 = m2.Memo.reg in
  Alcotest.(check int) "col count" (Registry.count reg1) (Registry.count reg2);
  for id = 0 to Registry.count reg1 - 1 do
    Alcotest.(check string) "name" (Registry.name reg1 id) (Registry.name reg2 id);
    Alcotest.(check string) "label" (Registry.label reg1 id) (Registry.label reg2 id)
  done

(* random expression encode/decode *)
let arb_expr =
  let open QCheck.Gen in
  let lit_gen =
    oneof
      [ map (fun i -> Catalog.Value.Int i) small_signed_int;
        map (fun f -> Catalog.Value.Float f) (float_bound_inclusive 100.);
        map (fun s -> Catalog.Value.String s) (string_size ~gen:printable (int_range 0 6));
        return Catalog.Value.Null ]
  in
  let rec gen n =
    if n = 0 then
      oneof [ map (fun c -> Expr.Col c) (int_range 0 20); map (fun v -> Expr.Lit v) lit_gen ]
    else
      frequency
        [ (2, map (fun c -> Expr.Col c) (int_range 0 20));
          (2, map (fun v -> Expr.Lit v) lit_gen);
          (3,
           map3
             (fun op a b -> Expr.Bin (op, a, b))
             (oneofl Expr.[ Add; Sub; Mul; Eq; Lt; And; Or ])
             (gen (n - 1)) (gen (n - 1)));
          (1, map (fun a -> Expr.Un (Expr.Not, a)) (gen (n - 1)));
          (1, map (fun a -> Expr.Is_null (a, true)) (gen (n - 1)));
          (1, map (fun a -> Expr.Like (a, "ab%c_", false)) (gen (n - 1)));
          (1,
           map2 (fun a v -> Expr.In_list (a, v, true)) (gen (n - 1)) (list_size (int_range 0 3) lit_gen));
          (1, map2 (fun c v -> Expr.Case ([ (c, v) ], Some v)) (gen (n - 1)) (gen (n - 1)));
          (1, map (fun a -> Expr.Cast (a, Catalog.Types.Tfloat)) (gen (n - 1))) ]
  in
  QCheck.make (gen 4)

let prop_expr_xml_roundtrip =
  QCheck.Test.make ~name:"expression XML round trip" ~count:500 arb_expr
    (fun e ->
       let xml = Memo.Memo_xml.expr_to_xml e in
       let e' = Memo.Memo_xml.expr_of_xml (Memo.Xml.parse (Memo.Xml.to_string xml)) in
       Expr.equal e e')

(* XML parser unit checks *)
let test_xml_escape () =
  let n =
    Memo.Xml.node ~attrs:[ ("v", "a<b&\"c'd>") ] "x"
  in
  let s = Memo.Xml.to_string n in
  let n' = Memo.Xml.parse s in
  Alcotest.(check string) "escaped attr" "a<b&\"c'd>" (Memo.Xml.attr n' "v")

let test_xml_errors () =
  let fails s =
    match Memo.Xml.parse s with
    | exception Memo.Xml.Xml_error _ -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ s)
  in
  fails "<a><b></a>";
  fails "<a";
  fails "<a attr></a>"

let suite =
  [ t "insert dedup" test_insert_dedup;
    t "identical trees share groups" test_shared_subtrees_dedup;
    t "group merging" test_group_merge;
    t "cardinality property" test_props_cardinality;
    t "column property" test_props_cols;
    t "width property" test_width;
    t "memo XML round trip (counts/props)" test_xml_roundtrip_counts;
    t "memo XML registry round trip" test_xml_registry_roundtrip;
    QCheck_alcotest.to_alcotest prop_expr_xml_roundtrip;
    t "XML attribute escaping" test_xml_escape;
    t "XML parse errors" test_xml_errors ]
