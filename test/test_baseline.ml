(* The parallelize-best-serial-plan baseline (§3.2 strawman). *)

let t name f = Alcotest.test_case name `Quick f

let baseline sql =
  let r = Fixtures.optimize sql in
  (r, Option.get r.Opdw.baseline_plan)

let test_structure_matches_serial () =
  (* the baseline keeps the serial operator sequence: same number of serial
     operators, only Move/Return nodes added *)
  let r, b = baseline (Option.get (Tpch.Queries.find "Q3")).Tpch.Queries.sql in
  let serial = Option.get r.Opdw.serial.Serialopt.Optimizer.best in
  let rec count_serial (p : Pdwopt.Pplan.t) =
    (match p.Pdwopt.Pplan.op with Pdwopt.Pplan.Serial _ -> 1 | _ -> 0)
    + List.fold_left (fun a c -> a + count_serial c) 0 p.Pdwopt.Pplan.children
  in
  Alcotest.(check int) "serial ops preserved" (Serialopt.Plan.size serial) (count_serial b)

let test_collocated_no_moves () =
  let _, b =
    baseline "SELECT o_orderkey, l_quantity FROM orders, lineitem WHERE o_orderkey = l_orderkey"
  in
  Alcotest.(check int) "no repair needed" 0 (Pdwopt.Pplan.move_count b)

let test_repair_inserted () =
  let _, b =
    baseline "SELECT c_custkey, o_orderdate FROM orders, customer WHERE o_custkey = c_custkey"
  in
  Alcotest.(check bool) "movement inserted" true (Pdwopt.Pplan.move_count b >= 1)

let test_no_local_global_split () =
  (* the baseline shuffles raw rows for a group-by; it never splits *)
  let _, b = baseline "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey" in
  let rec aggs (p : Pdwopt.Pplan.t) =
    (match p.Pdwopt.Pplan.op with
     | Pdwopt.Pplan.Serial (Memo.Physop.Hash_agg _ | Memo.Physop.Stream_agg _) -> 1
     | _ -> 0)
    + List.fold_left (fun a c -> a + aggs c) 0 p.Pdwopt.Pplan.children
  in
  Alcotest.(check int) "single aggregation operator" 1 (aggs b)

let test_pdw_never_worse () =
  (* the PDW optimizer explores a superset of the baseline's options, so its
     modelled cost can never be worse *)
  List.iter
    (fun q ->
       let r = Fixtures.optimize q.Tpch.Queries.sql in
       match r.Opdw.baseline_plan with
       | Some b ->
         Alcotest.(check bool)
           (q.Tpch.Queries.id ^ ": pdw <= baseline")
           true
           ((Opdw.plan r).Pdwopt.Pplan.dms_cost <= b.Pdwopt.Pplan.dms_cost +. 1e-12)
       | None -> Alcotest.fail (q.Tpch.Queries.id ^ ": baseline missing"))
    Tpch.Queries.all

let test_baseline_executes_everywhere () =
  (* covered per query in e2e; here check the plan is structurally valid *)
  List.iter
    (fun q ->
       let r = Fixtures.optimize q.Tpch.Queries.sql in
       match r.Opdw.baseline_plan with
       | Some b ->
         (match b.Pdwopt.Pplan.op with
          | Pdwopt.Pplan.Return _ -> ()
          | _ -> Alcotest.fail "baseline root must be Return")
       | None -> Alcotest.fail "no baseline")
    Tpch.Queries.all

let suite =
  [ t "keeps the serial operator structure" test_structure_matches_serial;
    t "collocated plan needs no repair" test_collocated_no_moves;
    t "incompatible join repaired" test_repair_inserted;
    t "no local/global aggregation split" test_no_local_global_split;
    t "PDW modelled cost never worse" test_pdw_never_worse;
    t "well-formed on whole workload" test_baseline_executes_everywhere ]
