(* Executing the GENERATED DSQL text (re-parsed through our own front-end)
   must produce the same results as interpreting the plan directly — the
   strongest check on DSQL generation (paper §2.4/§3.4). *)

let t name f = Alcotest.test_case name `Quick f

let w () = Lazy.force Fixtures.tpch_workload

let via_dsql sql =
  let wl = w () in
  let r = Opdw.optimize wl.Opdw.Workload.shell sql in
  let app = wl.Opdw.Workload.app in
  let from_plan = Opdw.run app r in
  let from_dsql = Engine.Dsql_exec.run app r.Opdw.dsql in
  let cols = List.map snd (Opdw.output_columns r) in
  (r,
   Engine.Local.canonical ~cols from_plan,
   (* the re-parsed statements have their own column ids; compare full rows *)
   Engine.Local.canonical from_dsql)

let check sql =
  let _, plan_rows, dsql_rows = via_dsql sql in
  Alcotest.(check (list string)) ("dsql == plan: " ^ sql) plan_rows dsql_rows

let test_local_only () = check "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 300000"

let test_shuffle_join () =
  check "SELECT c_custkey, o_orderdate FROM orders, customer WHERE o_custkey = c_custkey"

let test_groupby_split () =
  check "SELECT o_custkey, COUNT(*) AS c, SUM(o_totalprice) AS s FROM orders GROUP BY o_custkey"

let test_avg_split () =
  check "SELECT c_nationkey, AVG(c_acctbal) AS a FROM customer GROUP BY c_nationkey"

let test_semi_join () =
  check
    "SELECT c_name FROM customer WHERE c_custkey IN \
     (SELECT o_custkey FROM orders WHERE o_totalprice > 200000)"

let test_order_and_top () =
  check "SELECT TOP 10 o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice DESC"

let test_union () =
  check
    "SELECT n_nationkey AS k FROM nation UNION ALL SELECT r_regionkey AS k FROM region"

let test_workload_queries () =
  (* the paper's worked examples plus a representative TPC-H slice, executed
     from their generated DSQL text *)
  List.iter
    (fun id -> check (Option.get (Tpch.Queries.find id)).Tpch.Queries.sql)
    [ "P1"; "F3"; "P2"; "Q1"; "Q3"; "Q4"; "Q5"; "Q6"; "Q10"; "Q12"; "Q14"; "Q16";
      "Q17"; "Q19"; "Q20" ]

let suite =
  [ t "pure-local statement" test_local_only;
    t "shuffle join" test_shuffle_join;
    t "local/global group-by" test_groupby_split;
    t "AVG recomposition" test_avg_split;
    t "semi join as EXISTS" test_semi_join;
    t "order by + top at Return" test_order_and_top;
    t "union all" test_union;
    t "workload queries via DSQL text" test_workload_queries ]
