(* TPC-H substrate: schema integrity and generator invariants. *)

open Catalog

let t name f = Alcotest.test_case name `Quick f

let db = lazy (Tpch.Datagen.generate 0.002)

let rows name = Tpch.Datagen.rows (Lazy.force db) name

let test_schema_count () =
  Alcotest.(check int) "8 tables" 8 (List.length Tpch.Schema.layout)

let test_distribution_layout () =
  let dist name =
    let schema, d = List.find (fun (s, _) -> s.Schema.name = name) Tpch.Schema.layout in
    ignore schema; d
  in
  Alcotest.(check bool) "orders on orderkey" true
    (Distribution.equal (dist "orders") (Distribution.Hash_partitioned [ "o_orderkey" ]));
  Alcotest.(check bool) "lineitem collocated with orders" true
    (Distribution.equal (dist "lineitem") (Distribution.Hash_partitioned [ "l_orderkey" ]));
  Alcotest.(check bool) "customer on custkey" true
    (Distribution.equal (dist "customer") (Distribution.Hash_partitioned [ "c_custkey" ]));
  List.iter
    (fun n ->
       Alcotest.(check bool) (n ^ " replicated") true
         (Distribution.is_replicated (dist n)))
    [ "nation"; "region"; "supplier" ]

let test_fk_declarations () =
  (* every declared FK points at an existing table/column *)
  List.iter
    (fun (schema, _) ->
       Array.iter
         (fun (c : Schema.column) ->
            match c.Schema.references with
            | None -> ()
            | Some (tbl, col) ->
              let target, _ =
                List.find (fun (s, _) -> s.Schema.name = tbl) Tpch.Schema.layout
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s.%s -> %s.%s" schema.Schema.name c.Schema.col_name tbl col)
                true
                (Schema.find_col target col <> None))
         schema.Schema.columns)
    Tpch.Schema.layout

let test_row_counts_scale () =
  let n name = List.length (rows name) in
  Alcotest.(check int) "5 regions" 5 (n "region");
  Alcotest.(check int) "25 nations" 25 (n "nation");
  Alcotest.(check bool) "orders ~ 10x customers" true
    (n "orders" >= 8 * n "customer" && n "orders" <= 12 * n "customer");
  Alcotest.(check bool) "lineitem ~ 4x orders" true
    (n "lineitem" >= 2 * n "orders" && n "lineitem" <= 7 * n "orders")

let test_determinism () =
  let a = Tpch.Datagen.generate 0.001 and b = Tpch.Datagen.generate 0.001 in
  Alcotest.(check bool) "same output for same sf" true
    (Tpch.Datagen.rows a "lineitem" = Tpch.Datagen.rows b "lineitem")

let test_referential_integrity () =
  let keys name idx =
    List.fold_left
      (fun acc (r : Value.t array) -> match r.(idx) with Value.Int k -> k :: acc | _ -> acc)
      [] (rows name)
    |> List.sort_uniq compare
  in
  let custkeys = keys "customer" 0 in
  let order_custs = keys "orders" 1 in
  Alcotest.(check bool) "orders reference existing customers" true
    (List.for_all (fun k -> List.mem k custkeys) order_custs);
  let orderkeys = keys "orders" 0 in
  let li_orders = keys "lineitem" 0 in
  Alcotest.(check bool) "lineitems reference existing orders" true
    (List.for_all (fun k -> List.mem k orderkeys) li_orders)

let test_lineitem_dates_consistent () =
  List.iter
    (fun (r : Value.t array) ->
       match r.(10), r.(12) with
       | Value.Date ship, Value.Date receipt ->
         Alcotest.(check bool) "ship < receipt" true (ship < receipt)
       | _ -> Alcotest.fail "dates expected")
    (rows "lineitem")

let test_forest_parts_exist () =
  (* Q20's predicate must be satisfiable *)
  let forest =
    List.filter
      (fun (r : Value.t array) ->
         match r.(1) with
         | Value.String name ->
           String.length name >= 6 && String.sub name 0 6 = "forest"
         | _ -> false)
      (rows "part")
  in
  Alcotest.(check bool) "some forest% parts" true (forest <> [])

let test_value_types_match_schema () =
  List.iter
    (fun (schema, _) ->
       match rows schema.Schema.name with
       | [] -> ()
       | row :: _ ->
         Array.iteri
           (fun i (c : Schema.column) ->
              match Value.type_of row.(i) with
              | None -> ()
              | Some ty ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s.%s type" schema.Schema.name c.Schema.col_name)
                  true
                  (Types.compatible ty c.Schema.col_type))
           schema.Schema.columns)
    Tpch.Schema.layout

let test_plans_validate () =
  (* every bundled workload query's chosen plan + DSQL program must pass the
     full static analyzer (distribution, movement, cost, DSQL rules) *)
  let sh = Fixtures.shell () in
  List.iter
    (fun q ->
       let r = Opdw.optimize ~check:false sh q.Tpch.Queries.sql in
       let cost =
         { Check.nodes = 4;
           lambdas = Pdwopt.Enumerate.default_opts.Pdwopt.Enumerate.lambdas;
           reg = r.Opdw.memo.Memo.reg }
       in
       match Check.validate ~cost ~dsql:r.Opdw.dsql ~shell:sh (Opdw.plan r) with
       | [] -> ()
       | vs -> Alcotest.failf "%s:\n%s" q.Tpch.Queries.id (Check.to_string vs))
    Tpch.Queries.all

let suite =
  [ t "table count" test_schema_count;
    t "paper distribution layout" test_distribution_layout;
    t "FK declarations valid" test_fk_declarations;
    t "row counts scale" test_row_counts_scale;
    t "generator is deterministic" test_determinism;
    t "referential integrity" test_referential_integrity;
    t "lineitem date ordering" test_lineitem_dates_consistent;
    t "forest parts exist (Q20)" test_forest_parts_exist;
    t "value types match schema" test_value_types_match_schema;
    t "workload plans pass the analyzer" test_plans_validate ]
