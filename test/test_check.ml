(* Static plan-validity analyzer (lib/check): positive runs over optimizer
   and baseline plans, plus a mutation matrix — each hand-corrupted plan or
   DSQL program must be rejected with the right rule id. *)

let t name f = Alcotest.test_case name `Quick f

let agg_sql =
  "SELECT o_orderstatus, SUM(o_totalprice) AS s FROM orders, customer \
   WHERE o_custkey = c_custkey GROUP BY o_orderstatus"

let q3_sql =
  match Tpch.Queries.find "Q3" with
  | Some q -> q.Tpch.Queries.sql
  | None -> failwith "Q3 missing from the bundled workload"

(* optimize without the built-in gate so mutants reach [Check.validate] *)
let optimize_raw sql = Opdw.optimize ~check:false (Fixtures.shell ()) sql

let cost_of (r : Opdw.result) =
  { Check.nodes = 4;  (* fixtures workload is node_count:4 *)
    lambdas = Pdwopt.Enumerate.default_opts.Pdwopt.Enumerate.lambdas;
    reg = r.Opdw.memo.Memo.reg }

let validate_full (r : Opdw.result) p =
  Check.validate ~cost:(cost_of r) ~dsql:r.Opdw.dsql ~shell:(Fixtures.shell ()) p

(* -- mutation helpers -- *)

let map_tree f p =
  let rec go p =
    f { p with Pdwopt.Pplan.children = List.map go p.Pdwopt.Pplan.children }
  in
  go p

(* apply [f] to the first (deepest-leftmost) node it accepts; a mutation that
   finds no target is a test bug, not a pass *)
let mutate_first f p =
  let hit = ref false in
  let p' =
    map_tree
      (fun n ->
         if !hit then n
         else match f n with Some n' -> hit := true; n' | None -> n)
      p
  in
  if not !hit then Alcotest.fail "mutation found no applicable plan node";
  p'

let expect_rules ~rules vs =
  if vs = [] then
    Alcotest.failf "mutant validated clean (expected one of [%s])"
      (String.concat "; " rules);
  if not (List.exists (fun v -> List.mem v.Check.rule rules) vs) then
    Alcotest.failf "expected a violation of [%s], got:\n%s"
      (String.concat "; " rules) (Check.to_string vs)

(* -- positive: real plans validate clean -- *)

let test_rule_catalog () =
  Alcotest.(check int) "thirteen rules" 13 (List.length Check.rules);
  let ids = List.map (fun r -> r.Check.id) Check.rules in
  Alcotest.(check int) "unique ids" 13
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun r ->
       Alcotest.(check bool)
         (r.Check.id ^ " cites a paper section") true
         (String.length r.Check.paper > 0))
    Check.rules

let test_clean_agg () =
  let r = optimize_raw agg_sql in
  let vs = validate_full r (Opdw.plan r) in
  Alcotest.(check string) "no violations" "" (Check.to_string vs)

let test_clean_q3 () =
  let r = optimize_raw q3_sql in
  let vs = validate_full r (Opdw.plan r) in
  Alcotest.(check string) "no violations" "" (Check.to_string vs)

let test_clean_baseline () =
  let r = optimize_raw q3_sql in
  match r.Opdw.baseline_plan with
  | None -> Alcotest.fail "no baseline plan produced"
  | Some b ->
    let vs = Check.validate_exec ~shell:(Fixtures.shell ()) b in
    Alcotest.(check string) "baseline passes exec rules" ""
      (Check.to_string vs)

(* -- mutation matrix -- *)

(* m1: splice out the deepest movement; its consumer now sees an input with
   the wrong distribution *)
let test_mut_splice_move () =
  let r = optimize_raw agg_sql in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Move _ -> Some (List.hd n.Pdwopt.Pplan.children)
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R1.dist-rederive"; "R2.dist-local-op" ]
    (Check.validate ~shell:(Fixtures.shell ()) bad)

(* m2: re-point a Shuffle at different hash columns while keeping the node's
   declared distribution *)
let test_mut_shuffle_cols () =
  let r = optimize_raw agg_sql in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Move { kind = Dms.Op.Shuffle hc; cols } ->
           Some { n with
                  Pdwopt.Pplan.op =
                    Pdwopt.Pplan.Move
                      { kind = Dms.Op.Shuffle (List.map (( + ) 1000) hc);
                        cols } }
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R3.move-applicability" ]
    (Check.validate ~shell:(Fixtures.shell ()) bad)

(* m5: drop a hash column from the movement's carried projection *)
let test_mut_move_layout () =
  let r = optimize_raw agg_sql in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op with
         | Pdwopt.Pplan.Move { kind = Dms.Op.Shuffle (h :: _) as kind; cols }
           when List.mem h cols ->
           Some { n with
                  Pdwopt.Pplan.op =
                    Pdwopt.Pplan.Move
                      { kind; cols = List.filter (fun c -> c <> h) cols } }
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R4.move-layout" ]
    (Check.validate ~shell:(Fixtures.shell ()) bad)

(* m6: flip a serial operator's declared hash distribution *)
let test_mut_serial_dist () =
  let r = optimize_raw agg_sql in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op, n.Pdwopt.Pplan.dist with
         | Pdwopt.Pplan.Serial _, Dms.Distprop.Hashed (_ :: _) ->
           Some { n with Pdwopt.Pplan.dist = Dms.Distprop.Replicated }
         | _ -> None)
      (Opdw.plan r)
  in
  expect_rules ~rules:[ "R1.dist-rederive"; "R2.dist-local-op" ]
    (Check.validate ~shell:(Fixtures.shell ()) bad)

(* m4: a root claiming to cost less than its children *)
let test_mut_root_cost () =
  let r = optimize_raw agg_sql in
  let p = Opdw.plan r in
  let child_dms =
    List.fold_left
      (fun a c -> a +. c.Pdwopt.Pplan.dms_cost) 0. p.Pdwopt.Pplan.children
  in
  if child_dms <= 0. then
    Alcotest.fail "plan has no movement cost to corrupt";
  let bad = { p with Pdwopt.Pplan.dms_cost = 0. } in
  expect_rules ~rules:[ "R5.cost-monotone" ]
    (Check.validate ~shell:(Fixtures.shell ()) bad)

(* -- DSQL mutations -- *)

let dsql_of sql =
  let r = optimize_raw sql in
  (r, Opdw.plan r, r.Opdw.dsql)

let validate_dsql r p d =
  Check.validate ~cost:(cost_of r) ~dsql:d ~shell:(Fixtures.shell ()) p

(* m3: swap the first two steps; ids are no longer sequential and the Return
   step no longer trails *)
let test_mut_dsql_swap () =
  let r, p, d = dsql_of agg_sql in
  let bad =
    match d.Dsql.Generate.steps with
    | a :: b :: rest -> { d with Dsql.Generate.steps = b :: a :: rest }
    | _ -> Alcotest.fail "need at least two DSQL steps"
  in
  expect_rules ~rules:[ "R7.dsql-steps" ] (validate_dsql r p bad)

(* m7: drop the trailing Return step *)
let test_mut_dsql_no_return () =
  let r, p, d = dsql_of agg_sql in
  let bad =
    { d with
      Dsql.Generate.steps =
        List.filter
          (function Dsql.Generate.Return_step _ -> false | _ -> true)
          d.Dsql.Generate.steps }
  in
  expect_rules ~rules:[ "R7.dsql-steps" ] (validate_dsql r p bad)

(* m9: duplicate a step id *)
let test_mut_dsql_dup_id () =
  let r, p, d = dsql_of agg_sql in
  let bad =
    { d with
      Dsql.Generate.steps =
        List.map
          (function
            | Dsql.Generate.Return_step s ->
              Dsql.Generate.Return_step { s with id = 0 }
            | s -> s)
          d.Dsql.Generate.steps }
  in
  expect_rules ~rules:[ "R7.dsql-steps" ] (validate_dsql r p bad)

(* m8: corrupt a temp-table column id; the DMS step schema no longer matches
   the movement that fills it *)
let test_mut_dsql_schema () =
  let r, p, d = dsql_of agg_sql in
  let hit = ref false in
  let bad =
    { d with
      Dsql.Generate.steps =
        List.map
          (function
            | Dsql.Generate.Dms_step ({ cols = (id, n) :: rest; _ } as s)
              when not !hit ->
              hit := true;
              Dsql.Generate.Dms_step { s with cols = (id + 1000, n) :: rest }
            | s -> s)
          d.Dsql.Generate.steps }
  in
  if not !hit then Alcotest.fail "no DMS step to corrupt";
  expect_rules ~rules:[ "R9.dsql-schema" ] (validate_dsql r p bad)

(* -- appliance refusal (satellite: the engine will not run an invalid plan) -- *)

let test_appliance_refusal () =
  let app = Fixtures.app () in
  let r = optimize_raw agg_sql in
  let bad =
    mutate_first
      (fun n ->
         match n.Pdwopt.Pplan.op, n.Pdwopt.Pplan.dist with
         | Pdwopt.Pplan.Serial _, Dms.Distprop.Hashed (_ :: _) ->
           (* still Hashed, so the simulated substrate happily executes it;
              only the analyzer knows the annotation is a lie *)
           Some { n with Pdwopt.Pplan.dist = Dms.Distprop.Hashed [ 999_999 ] }
         | _ -> None)
      (Opdw.plan r)
  in
  Fun.protect
    ~finally:(fun () -> Engine.Appliance.set_check app true)
    (fun () ->
       Engine.Appliance.set_check app true;
       (match Engine.Appliance.run_pplan app bad with
        | _ -> Alcotest.fail "appliance executed an invalid plan"
        | exception Check.Invalid vs ->
          expect_rules ~rules:[ "R1.dist-rederive"; "R2.dist-local-op" ] vs);
       (* with the gate off, the same plan runs (wrong annotations and all) *)
       Engine.Appliance.set_check app false;
       let res = Engine.Appliance.run_pplan app bad in
       Alcotest.(check bool) "gate off: plan executes" true
         (List.length res.Engine.Local.rows >= 0))

let suite =
  [ t "rule catalog" test_rule_catalog;
    t "agg plan validates clean" test_clean_agg;
    t "Q3 plan validates clean" test_clean_q3;
    t "baseline plan passes exec rules" test_clean_baseline;
    t "mutation: spliced-out movement" test_mut_splice_move;
    t "mutation: shuffle hash columns" test_mut_shuffle_cols;
    t "mutation: movement layout" test_mut_move_layout;
    t "mutation: serial distribution" test_mut_serial_dist;
    t "mutation: root cost" test_mut_root_cost;
    t "mutation: DSQL step order" test_mut_dsql_swap;
    t "mutation: DSQL missing return" test_mut_dsql_no_return;
    t "mutation: DSQL duplicate id" test_mut_dsql_dup_id;
    t "mutation: DSQL temp schema" test_mut_dsql_schema;
    t "appliance refuses invalid plans" test_appliance_refusal ]
