(* Values: comparison, hashing, dates, LIKE matching. *)

open Catalog

let check = Alcotest.check
let bool_ = Alcotest.bool
let int_ = Alcotest.int
let string_ = Alcotest.string

let t name f = Alcotest.test_case name `Quick f

let date y m d = Value.days_from_civil ~y ~m ~d

let test_date_roundtrip () =
  List.iter
    (fun (y, m, d) ->
       let z = date y m d in
       check (Alcotest.triple int_ int_ int_) "civil round trip" (y, m, d)
         (Value.civil_from_days z))
    [ (1970, 1, 1); (1994, 1, 1); (2000, 2, 29); (1999, 12, 31); (1900, 3, 1) ]

let test_date_epoch () =
  check int_ "epoch is day 0" 0 (date 1970 1 1);
  check int_ "day after epoch" 1 (date 1970 1 2)

let test_date_of_string () =
  check (Alcotest.option int_) "parse" (Some (date 1994 1 1)) (Value.date_of_string "1994-01-01");
  check (Alcotest.option int_) "parse with time" (Some (date 1995 1 1))
    (Value.date_of_string "1995-01-01 00:00:00.000");
  check (Alcotest.option int_) "garbage" None (Value.date_of_string "not-a-date")

let test_add_years () =
  check string_ "add 1 year" "1995-01-01" (Value.string_of_date (Value.add_years (date 1994 1 1) 1));
  check string_ "leap clamp" "2001-02-28"
    (Value.string_of_date (Value.add_years (date 2000 2 29) 1))

let test_add_months () =
  check string_ "add 3 months" "1993-10-01"
    (Value.string_of_date (Value.add_months (date 1993 7 1) 3));
  check string_ "across year" "1994-01-15"
    (Value.string_of_date (Value.add_months (date 1993 11 15) 2))

let test_compare_numeric () =
  check bool_ "int < float" true (Value.compare (Value.Int 1) (Value.Float 1.5) < 0);
  check bool_ "int = float" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  check bool_ "nulls first" true (Value.compare Value.Null (Value.Int (-100)) < 0)

let test_hash_consistent_int_float () =
  check bool_ "hash(2) = hash(2.0)" true
    (Value.hash (Value.Int 2) = Value.hash (Value.Float 2.0))

let test_to_sql () =
  check string_ "string escaping" "'it''s'" (Value.to_sql (Value.String "it's"));
  check string_ "date cast" "CAST ('1994-01-01' AS DATE)"
    (Value.to_sql (Value.Date (date 1994 1 1)));
  check string_ "null" "NULL" (Value.to_sql Value.Null)

(* property: compare is a total order consistent with equal *)
let arb_value =
  QCheck.make
    ~print:(fun v -> Value.to_string v)
    QCheck.Gen.(
      oneof
        [ return Value.Null;
          map (fun i -> Value.Int i) small_signed_int;
          map (fun f -> Value.Float f) (float_bound_inclusive 1000.);
          map (fun s -> Value.String s) (string_size (int_range 0 8));
          map (fun b -> Value.Bool b) bool;
          map (fun d -> Value.Date d) (int_range 0 20000) ])

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    (QCheck.pair arb_value arb_value)
    (fun (a, b) -> compare (Value.compare a b) 0 = compare 0 (Value.compare b a))

let prop_compare_refl =
  QCheck.Test.make ~name:"compare reflexive" ~count:200 arb_value
    (fun a -> Value.compare a a = 0)

let prop_equal_hash =
  QCheck.Test.make ~name:"equal values hash equally" ~count:500
    (QCheck.pair arb_value arb_value)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_date_roundtrip =
  QCheck.Test.make ~name:"date string round trip" ~count:500
    (QCheck.make QCheck.Gen.(int_range (-100000) 100000))
    (fun z -> Value.date_of_string (Value.string_of_date z) = Some z)

let suite =
  [ t "date round trip" test_date_roundtrip;
    t "date epoch" test_date_epoch;
    t "date_of_string" test_date_of_string;
    t "add years" test_add_years;
    t "add months" test_add_months;
    t "numeric comparison" test_compare_numeric;
    t "int/float hash consistency" test_hash_consistent_int_float;
    t "to_sql" test_to_sql;
    QCheck_alcotest.to_alcotest prop_compare_antisym;
    QCheck_alcotest.to_alcotest prop_compare_refl;
    QCheck_alcotest.to_alcotest prop_equal_hash;
    QCheck_alcotest.to_alcotest prop_date_roundtrip ]
