(* Algebrizer: name resolution, typing, subquery decorrelation. *)

open Algebra

let t name f = Alcotest.test_case name `Quick f

let alg sql = Algebra.Algebrizer.of_sql (Fixtures.shell ()) sql

let rec find_ops pred (tr : Relop.t) =
  (if pred tr.Relop.op then [ tr ] else []) @ List.concat_map (find_ops pred) tr.Relop.children

let count_ops pred tr = List.length (find_ops pred tr)

let is_join k = function Relop.Join { kind; _ } -> kind = k | _ -> false
let is_groupby = function Relop.Group_by _ -> true | _ -> false
let is_get = function Relop.Get _ -> true | _ -> false

let test_simple_resolution () =
  let r = alg "SELECT c_custkey, c_name FROM customer" in
  Alcotest.(check int) "two output cols" 2 (List.length r.Algebrizer.output);
  Alcotest.(check (list string)) "names" [ "c_custkey"; "c_name" ]
    (List.map fst r.Algebrizer.output)

let test_alias_resolution () =
  let r = alg "SELECT c.c_custkey FROM customer c, orders o WHERE c.c_custkey = o.o_custkey" in
  Alcotest.(check int) "gets" 2 (count_ops is_get r.Algebrizer.tree)

let test_star_expansion () =
  let r = alg "SELECT * FROM nation" in
  Alcotest.(check int) "nation has 4 cols" 4 (List.length r.Algebrizer.output)

let test_qualified_star () =
  let r = alg "SELECT n.* , r_name FROM nation n, region r WHERE n.n_regionkey = r.r_regionkey" in
  Alcotest.(check int) "4 + 1 cols" 5 (List.length r.Algebrizer.output)

let test_unknown_column () =
  Alcotest.(check bool) "raises" true
    (match alg "SELECT nope FROM customer" with
     | exception Algebrizer.Resolve_error _ -> true
     | _ -> false)

let test_ambiguous_column () =
  Alcotest.(check bool) "raises" true
    (match alg "SELECT n_nationkey FROM nation a, nation b" with
     | exception Algebrizer.Resolve_error _ -> true
     | _ -> false)

let test_unknown_table () =
  Alcotest.(check bool) "raises" true
    (match alg "SELECT x FROM nonexistent" with
     | exception Algebrizer.Resolve_error _ -> true
     | _ -> false)

let test_unique_col_ids () =
  (* two instances of the same table get distinct column ids *)
  let r = alg "SELECT a.n_name FROM nation a, nation b WHERE a.n_nationkey = b.n_nationkey" in
  let gets = find_ops is_get r.Algebrizer.tree in
  match gets with
  | [ g1; g2 ] ->
    let cols tr = Relop.output_col_set tr in
    Alcotest.(check bool) "disjoint ids" true
      (Registry.Col_set.is_empty (Registry.Col_set.inter (cols g1) (cols g2)))
  | _ -> Alcotest.fail "expected two gets"

let test_in_subquery_becomes_semi () =
  let r = alg "SELECT c_name FROM customer WHERE c_custkey IN (SELECT o_custkey FROM orders)" in
  Alcotest.(check int) "semi join" 1 (count_ops (is_join Relop.Semi) r.Algebrizer.tree)

let test_not_in_becomes_anti () =
  let r = alg "SELECT c_name FROM customer WHERE c_custkey NOT IN (SELECT o_custkey FROM orders)" in
  Alcotest.(check int) "anti join" 1 (count_ops (is_join Relop.Anti_semi) r.Algebrizer.tree)

let test_exists_correlated () =
  let r =
    alg
      "SELECT c_name FROM customer WHERE EXISTS \
       (SELECT o_orderkey FROM orders WHERE o_custkey = c_custkey AND o_totalprice > 100)"
  in
  let semis = find_ops (is_join Relop.Semi) r.Algebrizer.tree in
  Alcotest.(check int) "one semi join" 1 (List.length semis);
  (* correlation became the join predicate *)
  match (List.hd semis).Relop.op with
  | Relop.Join { pred; _ } ->
    Alcotest.(check bool) "equality in join pred" true (Expr.equi_pairs pred <> [])
  | _ -> assert false

let test_scalar_agg_subquery () =
  let r =
    alg
      "SELECT o_orderkey FROM orders WHERE o_totalprice > \
       (SELECT AVG(o_totalprice) FROM orders)"
  in
  (* decorrelated into a join against a scalar aggregate *)
  Alcotest.(check int) "group by introduced" 1 (count_ops is_groupby r.Algebrizer.tree);
  Alcotest.(check int) "inner join introduced" 1
    (count_ops (is_join Relop.Inner) r.Algebrizer.tree)

let test_correlated_scalar_agg () =
  let r =
    alg
      "SELECT l_orderkey FROM lineitem l1 WHERE l_quantity > \
       (SELECT AVG(l_quantity) FROM lineitem l2 WHERE l2.l_partkey = l1.l_partkey)"
  in
  let gbs = find_ops is_groupby r.Algebrizer.tree in
  Alcotest.(check int) "one group by" 1 (List.length gbs);
  match (List.hd gbs).Relop.op with
  | Relop.Group_by { keys; _ } ->
    Alcotest.(check int) "correlation key" 1 (List.length keys)
  | _ -> assert false

let test_group_by_having () =
  let r =
    alg
      "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey HAVING COUNT(*) > 2"
  in
  Alcotest.(check int) "group by" 1 (count_ops is_groupby r.Algebrizer.tree);
  Alcotest.(check int) "having select above group"
    1
    (count_ops (function Relop.Select _ -> true | _ -> false) r.Algebrizer.tree)

let test_distinct_becomes_groupby () =
  let r = alg "SELECT DISTINCT n_regionkey FROM nation" in
  Alcotest.(check int) "group by for distinct" 1 (count_ops is_groupby r.Algebrizer.tree)

let test_agg_dedup () =
  (* the same aggregate used twice yields one agg_def *)
  let r = alg "SELECT SUM(o_totalprice), SUM(o_totalprice) + 1 FROM orders" in
  let gbs = find_ops is_groupby r.Algebrizer.tree in
  match (List.hd gbs).Relop.op with
  | Relop.Group_by { aggs; _ } -> Alcotest.(check int) "one agg" 1 (List.length aggs)
  | _ -> assert false

let test_order_by_alias () =
  let r = alg "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey ORDER BY cnt" in
  Alcotest.(check int) "sort present" 1
    (count_ops (function Relop.Sort _ -> true | _ -> false) r.Algebrizer.tree)

let test_date_coercion () =
  let r = alg "SELECT o_orderkey FROM orders WHERE o_orderdate >= '1994-01-01'" in
  let sels = find_ops (function Relop.Select _ -> true | _ -> false) r.Algebrizer.tree in
  let has_date_lit =
    List.exists
      (fun s ->
         match s.Relop.op with
         | Relop.Select (Expr.Bin (_, _, Expr.Lit (Catalog.Value.Date _))) -> true
         | _ -> false)
      sels
  in
  Alcotest.(check bool) "string literal coerced to date" true has_date_lit

let test_derived_table () =
  let r =
    alg
      "SELECT total FROM (SELECT o_custkey, SUM(o_totalprice) AS total FROM orders \
       GROUP BY o_custkey) AS agg WHERE total > 100"
  in
  Alcotest.(check int) "one output" 1 (List.length r.Algebrizer.output)

let test_output_types () =
  let r = alg "SELECT COUNT(*) AS c, AVG(o_totalprice) AS a FROM orders" in
  let reg = r.Algebrizer.reg in
  match r.Algebrizer.output with
  | [ (_, c); (_, a) ] ->
    Alcotest.(check string) "count is int" "int"
      (Catalog.Types.to_string (Registry.ty reg c));
    Alcotest.(check string) "avg is float" "float"
      (Catalog.Types.to_string (Registry.ty reg a))
  | _ -> Alcotest.fail "two outputs expected"

let suite =
  [ t "simple resolution" test_simple_resolution;
    t "alias resolution" test_alias_resolution;
    t "star expansion" test_star_expansion;
    t "qualified star" test_qualified_star;
    t "unknown column error" test_unknown_column;
    t "ambiguous column error" test_ambiguous_column;
    t "unknown table error" test_unknown_table;
    t "unique column identities" test_unique_col_ids;
    t "IN -> semi join" test_in_subquery_becomes_semi;
    t "NOT IN -> anti semi join" test_not_in_becomes_anti;
    t "correlated EXISTS -> semi join" test_exists_correlated;
    t "scalar aggregate subquery" test_scalar_agg_subquery;
    t "correlated scalar aggregate (Q17 shape)" test_correlated_scalar_agg;
    t "group by + having" test_group_by_having;
    t "DISTINCT becomes group-by" test_distinct_becomes_groupby;
    t "duplicate aggregates deduplicated" test_agg_dedup;
    t "order by select alias" test_order_by_alias;
    t "date literal coercion" test_date_coercion;
    t "derived table" test_derived_table;
    t "aggregate output types" test_output_types ]
