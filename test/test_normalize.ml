(* Normalization: folding, pushdown, transitivity closure, contradiction
   detection, redundant join elimination, semi-join relocation. *)

open Algebra

let t name f = Alcotest.test_case name `Quick f

let norm sql =
  let _, tr = Fixtures.algebrize_normalize sql in
  tr

let rec find_ops pred (tr : Relop.t) =
  (if pred tr.Relop.op then [ tr ] else []) @ List.concat_map (find_ops pred) tr.Relop.children

let count pred tr = List.length (find_ops pred tr)
let is_select = function Relop.Select _ -> true | _ -> false
let is_empty = function Relop.Empty _ -> true | _ -> false
let is_get = function Relop.Get _ -> true | _ -> false
let is_cross = function Relop.Join { kind = Relop.Cross; _ } -> true | _ -> false

let all_conjuncts tr =
  let rec go (n : Relop.t) =
    (match n.Relop.op with
     | Relop.Select p -> Expr.conjuncts p
     | Relop.Join { pred; _ } -> Expr.conjuncts pred
     | _ -> [])
    @ List.concat_map go n.Relop.children
  in
  go tr

let test_constant_folding () =
  let tr = norm "SELECT c_custkey FROM customer WHERE c_acctbal > 100 + 200" in
  let folded =
    List.exists
      (function
        | Expr.Bin (Expr.Gt, _, Expr.Lit (Catalog.Value.Int 300)) -> true
        | _ -> false)
      (all_conjuncts tr)
  in
  Alcotest.(check bool) "100+200 folded" true folded

let test_boolean_folding () =
  let tr = norm "SELECT c_custkey FROM customer WHERE c_acctbal > 0 AND 1 = 1" in
  let trivial =
    List.exists
      (function Expr.Lit (Catalog.Value.Bool true) -> true | _ -> false)
      (all_conjuncts tr)
  in
  Alcotest.(check bool) "no trivial TRUE conjunct" false trivial

let test_pushdown_below_join () =
  let tr =
    norm
      "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey \
       AND o_totalprice > 100 AND c_acctbal > 0"
  in
  (* both single-table filters sit directly above their Get *)
  let selects = find_ops is_select tr in
  let above_get s =
    match s.Relop.children with
    | [ { Relop.op = Relop.Get _; _ } ] -> true
    | _ -> false
  in
  Alcotest.(check int) "two pushed filters" 2
    (List.length (List.filter above_get selects))

let test_cross_to_inner () =
  let tr = norm "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey" in
  Alcotest.(check int) "no cross join left" 0 (count is_cross tr)

let test_transitivity_constants () =
  (* c_custkey = o_custkey and c_custkey = 7 must derive o_custkey = 7 *)
  let tr =
    norm
      "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey AND c_custkey = 7"
  in
  let derived =
    List.exists
      (function
        | Expr.Bin (Expr.Eq, Expr.Col _, Expr.Lit (Catalog.Value.Int 7)) -> true
        | _ -> false)
      (all_conjuncts tr)
    && List.length
         (List.filter
            (function
              | Expr.Bin (Expr.Eq, _, Expr.Lit (Catalog.Value.Int 7)) -> true
              | Expr.Bin (Expr.Eq, Expr.Lit (Catalog.Value.Int 7), _) -> true
              | _ -> false)
            (all_conjuncts tr))
       >= 2
  in
  Alcotest.(check bool) "constant propagated across equality" true derived

let test_transitivity_equalities () =
  (* a=b, b=c derives a=c somewhere *)
  let tr =
    norm
      "SELECT 1 AS one FROM customer, orders, lineitem \
       WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND c_custkey = l_suppkey"
  in
  (* the closure must add o_custkey = l_suppkey (or equivalent pair) *)
  let eqs = List.concat_map (fun c -> Option.to_list (Expr.as_col_eq c)) (all_conjuncts tr) in
  Alcotest.(check bool) "at least 4 equality conjuncts" true (List.length eqs >= 4)

let test_contradiction_range () =
  let tr = norm "SELECT c_name FROM customer WHERE c_acctbal > 100 AND c_acctbal < 50" in
  Alcotest.(check bool) "collapsed to Empty" true (count is_empty tr >= 1)

let test_contradiction_equality () =
  let tr = norm "SELECT c_name FROM customer WHERE c_custkey = 1 AND c_custkey = 2" in
  Alcotest.(check bool) "conflicting equalities" true (count is_empty tr >= 1)

let test_contradiction_false () =
  let tr = norm "SELECT c_name FROM customer WHERE 1 = 2" in
  Alcotest.(check bool) "literal false" true (count is_empty tr >= 1)

let test_no_false_contradiction () =
  let tr = norm "SELECT c_name FROM customer WHERE c_acctbal >= 100 AND c_acctbal <= 100" in
  Alcotest.(check int) "touching closed bounds are satisfiable" 0 (count is_empty tr)

let test_empty_propagation_join () =
  let tr =
    norm
      "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey AND 1 = 0"
  in
  Alcotest.(check bool) "empty propagates through join" true (count is_empty tr >= 1);
  Alcotest.(check int) "no join remains" 0
    (count (function Relop.Join _ -> true | _ -> false) tr)

let test_redundant_join_elimination () =
  (* joining orders to customer on the FK without using customer columns *)
  let tr = norm "SELECT o_orderkey FROM orders, customer WHERE o_custkey = c_custkey" in
  Alcotest.(check int) "customer join eliminated" 1 (count is_get tr)

let test_no_elimination_when_used () =
  let tr =
    norm "SELECT o_orderkey, c_name FROM orders, customer WHERE o_custkey = c_custkey"
  in
  Alcotest.(check int) "both tables needed" 2 (count is_get tr)

let test_no_elimination_non_pk () =
  (* join on a non-PK column must not be eliminated *)
  let tr =
    norm "SELECT c1.c_custkey FROM customer c1, customer c2 \
          WHERE c1.c_nationkey = c2.c_nationkey"
  in
  Alcotest.(check int) "self join kept" 2 (count is_get tr)

let test_semi_join_through_groupby () =
  (* Q20's shape: the part filter reaches lineitem below the aggregation *)
  let q20 = (Option.get (Tpch.Queries.find "Q20")).Tpch.Queries.sql in
  let tr = norm q20 in
  let gbs = find_ops (function Relop.Group_by _ -> true | _ -> false) tr in
  let gb_over_semi =
    List.exists
      (fun gb ->
         match gb.Relop.children with
         | [ { Relop.op = Relop.Join { kind = Relop.Semi; _ }; _ } ] -> true
         | _ -> false)
      gbs
  in
  Alcotest.(check bool) "group-by over semi-join (early filtering)" true gb_over_semi

let test_output_cols_preserved () =
  List.iter
    (fun sql ->
       let r = Algebra.Algebrizer.of_sql (Fixtures.shell ()) sql in
       let before = Relop.output_cols r.Algebrizer.tree in
       let after =
         Relop.output_cols
           (Normalize.normalize r.Algebrizer.reg (Fixtures.shell ()) r.Algebrizer.tree)
       in
       Alcotest.(check (list int)) ("outputs stable: " ^ sql) before after)
    [ "SELECT c_name FROM customer WHERE c_acctbal > 0";
      "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey";
      "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey AND 1 = 0" ]

(* property: normalization preserves semantics on the executable workload
   (covered more broadly by the end-to-end suite; here: idempotence) *)
let test_idempotent () =
  List.iter
    (fun q ->
       let sh = Fixtures.shell () in
       let r = Algebra.Algebrizer.of_sql sh q.Tpch.Queries.sql in
       let n1 = Normalize.normalize r.Algebrizer.reg sh r.Algebrizer.tree in
       let n2 = Normalize.normalize r.Algebrizer.reg sh n1 in
       Alcotest.(check int)
         ("same size after renormalizing " ^ q.Tpch.Queries.id)
         (Relop.size n1) (Relop.size n2))
    Tpch.Queries.all

let suite =
  [ t "constant folding" test_constant_folding;
    t "boolean folding" test_boolean_folding;
    t "pushdown below join" test_pushdown_below_join;
    t "cross + equality -> inner" test_cross_to_inner;
    t "transitive constant propagation" test_transitivity_constants;
    t "transitive equality closure" test_transitivity_equalities;
    t "contradiction: empty range" test_contradiction_range;
    t "contradiction: conflicting equalities" test_contradiction_equality;
    t "contradiction: literal false" test_contradiction_false;
    t "no false positive on touching bounds" test_no_false_contradiction;
    t "empty propagates through joins" test_empty_propagation_join;
    t "redundant FK join eliminated" test_redundant_join_elimination;
    t "join kept when columns used" test_no_elimination_when_used;
    t "join kept on non-PK equality" test_no_elimination_non_pk;
    t "semi-join pushed through group-by (Q20)" test_semi_join_through_groupby;
    t "output columns preserved" test_output_cols_preserved;
    t "idempotent on workload" test_idempotent ]
