(* The resource governor. The core invariant under test: under any
   deadline, cancel point, memo budget, admission pressure or breaker
   state, a statement comes back as correct rows, a Degraded-tagged but
   check-valid plan's correct rows, or a structured refusal
   (Rejected/Shed/Timed_out/Exhausted) — never wrong rows, never an
   unexplained exception, never a leaked gate slot. Simulated-clock
   deadlines must reproduce bit-identically at any [--jobs]. *)

let t name f = Alcotest.test_case name `Quick f

(* a dedicated workload: governed runs poke fault plans, pools and the
   simulated clock, which must never disturb other suites' fixtures *)
let w = lazy (Opdw.Workload.tpch ~node_count:4 ~sf:0.001 ())

let join_sql =
  "SELECT c_custkey, o_orderdate FROM orders, customer WHERE o_custkey = c_custkey"

(* full-budget, ungoverned, fault-free oracle rows *)
let oracle sql =
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  Engine.Appliance.set_fault app Fault.none;
  Engine.Appliance.reset_account app;
  let r = Opdw.optimize wl.Opdw.Workload.shell sql in
  let res = Opdw.run app r in
  Engine.Local.canonical ~cols:(List.map snd (Opdw.output_columns r)) res

let canonical r res =
  Engine.Local.canonical ~cols:(List.map snd (Opdw.output_columns r)) res

let limits_with ?deadline ?sim_deadline ?max_memo_groups () =
  { Governor.deadline; sim_deadline; max_memo_groups }

let options_with limits =
  { (Opdw.default_options ~node_count:4) with Opdw.governor = limits }

(* -- the token -- *)

let test_token_basics () =
  Alcotest.(check bool) "none never stops" false (Governor.should_stop Governor.none);
  Governor.cancel Governor.none;
  Governor.poll Governor.none;
  Alcotest.(check bool) "none stays inert" true (Governor.state Governor.none = None);
  let now = ref 0.0 in
  let clock () = !now in
  let tk = Governor.create () in
  Alcotest.(check bool) "fresh token live" true (Governor.state tk = None);
  Governor.add_deadline tk ~clock ~deadline:5.0;
  Alcotest.(check bool) "before deadline" true (Governor.state tk = None);
  Governor.poll tk;
  now := 5.0;
  Alcotest.(check bool) "at deadline" true
    (Governor.state tk = Some Governor.Deadline);
  Alcotest.(check bool) "should_stop trips" true (Governor.should_stop tk);
  (match Governor.poll ~where:"test.site" tk with
   | () -> Alcotest.fail "expected Cancelled"
   | exception Governor.Cancelled { reason; where } ->
     Alcotest.(check bool) "reason is deadline" true (reason = Governor.Deadline);
     Alcotest.(check string) "where names the site" "test.site" where);
  Governor.cancel tk;
  Alcotest.(check bool) "explicit cancel wins over deadline" true
    (Governor.state tk = Some Governor.Cancel)

let test_token_multiple_clocks () =
  (* one token, two deadlines on distinct clocks: whichever clock trips
     first cancels the statement (wall for compile, sim for exec) *)
  let wall = ref 0.0 and sim = ref 0.0 in
  let tk = Governor.create () in
  Governor.add_deadline tk ~clock:(fun () -> !wall) ~deadline:100.0;
  Governor.add_deadline tk ~clock:(fun () -> !sim) ~deadline:1.0;
  Alcotest.(check bool) "both armed, both live" true (Governor.state tk = None);
  sim := 2.0;
  Alcotest.(check bool) "second clock trips alone" true
    (Governor.state tk = Some Governor.Deadline)

(* -- the admission gate -- *)

let test_gate_overflow () =
  let g = Governor.Gate.create ~max_concurrent:1 ~queue_limit:0 () in
  let r = Governor.Gate.admit g (fun () -> Governor.Gate.try_admit g (fun () -> ())) in
  (match r with
   | Error rj ->
     Alcotest.(check int) "running at rejection" 1 rj.Governor.Gate.running;
     Alcotest.(check int) "queued at rejection" 0 rj.Governor.Gate.queued;
     Alcotest.(check int) "limit reported" 0 rj.Governor.Gate.queue_limit
   | Ok () -> Alcotest.fail "overflow must reject");
  (match Governor.Gate.admit g (fun () -> Governor.Gate.admit g (fun () -> ())) with
   | () -> Alcotest.fail "raising flavor must raise Rejected"
   | exception Governor.Gate.Rejected _ -> ());
  let st = Governor.Gate.stats g in
  Alcotest.(check int) "both rejections counted" 2 st.Governor.Gate.rejected;
  Alcotest.(check int) "slots all released" 0 (Governor.Gate.running g)

let test_gate_fifo () =
  let g = Governor.Gate.create ~max_concurrent:1 ~queue_limit:8 () in
  let order = ref [] in
  let order_mu = Mutex.create () in
  let release = Atomic.make false in
  let holder =
    Domain.spawn (fun () ->
        Governor.Gate.admit g (fun () ->
            while not (Atomic.get release) do Domain.cpu_relax () done))
  in
  while Governor.Gate.running g < 1 do Domain.cpu_relax () done;
  (* enqueue one at a time: each worker is observed queued (owns its FIFO
     ticket) before the next spawns, so arrival order is deterministic *)
  let workers =
    List.map
      (fun i ->
         let before = Governor.Gate.queued g in
         let d =
           Domain.spawn (fun () ->
               Governor.Gate.admit g (fun () ->
                   Mutex.lock order_mu;
                   order := i :: !order;
                   Mutex.unlock order_mu))
         in
         while Governor.Gate.queued g <= before do Domain.cpu_relax () done;
         d)
      [ 0; 1; 2; 3 ]
  in
  Atomic.set release true;
  Domain.join holder;
  List.iter Domain.join workers;
  Alcotest.(check (list int)) "served in arrival order" [ 0; 1; 2; 3 ]
    (List.rev !order);
  Alcotest.(check int) "no slot leaked" 0 (Governor.Gate.running g);
  let st = Governor.Gate.stats g in
  Alcotest.(check int) "all admitted" 5 st.Governor.Gate.admitted;
  Alcotest.(check int) "four had to wait" 4 st.Governor.Gate.queued_total;
  Alcotest.(check int) "width never exceeded" 1 st.Governor.Gate.peak_running

let test_gate_releases_on_raise () =
  (* the leak audit: raising bodies, many times over, must leave the gate
     exactly as they found it *)
  let g = Governor.Gate.create ~max_concurrent:2 ~queue_limit:0 () in
  for _ = 1 to 50 do
    (match Governor.Gate.admit g (fun () -> raise Exit) with
     | _ -> Alcotest.fail "body's exception must propagate"
     | exception Exit -> ());
    (match Governor.Gate.try_admit g (fun () -> failwith "boom") with
     | Ok _ | Error _ -> Alcotest.fail "body's exception must propagate"
     | exception Failure _ -> ())
  done;
  Alcotest.(check int) "no slot leaked" 0 (Governor.Gate.running g);
  Alcotest.(check int) "nothing queued" 0 (Governor.Gate.queued g);
  Alcotest.(check int) "gate still serves" 7 (Governor.Gate.admit g (fun () -> 7))

(* -- the circuit breaker -- *)

let test_breaker_transitions () =
  let now = ref 0.0 in
  let b =
    Governor.Breaker.create ~threshold:2 ~cooldown:10.0 ~clock:(fun () -> !now) ()
  in
  let key = "select 1" in
  Alcotest.(check bool) "closed proceeds" true
    (Governor.Breaker.check b key = `Proceed);
  Governor.Breaker.failure b key;
  Alcotest.(check bool) "one failure: still closed" true
    (Governor.Breaker.state b key = Governor.Breaker.Closed);
  Governor.Breaker.failure b key;
  Alcotest.(check bool) "threshold trips open" true
    (Governor.Breaker.state b key = Governor.Breaker.Open);
  (match Governor.Breaker.check b key with
   | `Shed remaining ->
     Alcotest.(check (float 1e-9)) "full cooldown remaining" 10.0 remaining
   | `Proceed -> Alcotest.fail "open breaker proceeded");
  Alcotest.(check bool) "other keys unaffected" true
    (Governor.Breaker.check b "select 2" = `Proceed);
  now := 11.0;
  Alcotest.(check bool) "cooldown over: half-open probe" true
    (Governor.Breaker.check b key = `Proceed);
  Alcotest.(check bool) "half-open state" true
    (Governor.Breaker.state b key = Governor.Breaker.Half_open);
  (match Governor.Breaker.check b key with
   | `Shed r -> Alcotest.(check (float 1e-9)) "probe in flight: shed 0" 0.0 r
   | `Proceed -> Alcotest.fail "two concurrent probes");
  Governor.Breaker.success b key;
  Alcotest.(check bool) "probe success closes" true
    (Governor.Breaker.state b key = Governor.Breaker.Closed);
  Governor.Breaker.failure b key;
  Governor.Breaker.failure b key;
  now := 22.0;
  Alcotest.(check bool) "second probe" true (Governor.Breaker.check b key = `Proceed);
  Governor.Breaker.failure b key;
  Alcotest.(check bool) "probe failure re-opens" true
    (Governor.Breaker.state b key = Governor.Breaker.Open);
  let st = Governor.Breaker.stats b in
  Alcotest.(check int) "trips" 3 st.Governor.Breaker.trips;
  Alcotest.(check int) "sheds" 2 st.Governor.Breaker.shed;
  Alcotest.(check int) "probes" 2 st.Governor.Breaker.probes;
  Alcotest.(check int) "closes" 1 st.Governor.Breaker.closes;
  let off = Governor.Breaker.create ~threshold:0 ~cooldown:1.0 ~clock:(fun () -> !now) () in
  Governor.Breaker.failure off key;
  Governor.Breaker.failure off key;
  Governor.Breaker.failure off key;
  Alcotest.(check bool) "threshold 0 disables" true
    (Governor.Breaker.check off key = `Proceed)

(* -- anytime and fallback degradation -- *)

let test_anytime_memo_budget () =
  let base = oracle join_sql in
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  let options = options_with (limits_with ~max_memo_groups:4 ()) in
  (* check:true gates the degraded plan through the full analyzer *)
  let r = Opdw.optimize ~options ~check:true wl.Opdw.Workload.shell join_sql in
  Alcotest.(check bool) "tagged anytime" true (r.Opdw.degraded = Some Opdw.Anytime);
  Alcotest.(check bool) "serial optimizer reports the cut" true
    (r.Opdw.serial.Serialopt.Optimizer.interrupted = Some Governor.Memo_budget);
  Engine.Appliance.reset_account app;
  let res = Opdw.run app r in
  Alcotest.(check (list string)) "anytime rows equal full-budget rows" base
    (canonical r res)

let test_fallback_on_expired_token () =
  let base = oracle join_sql in
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  (* a token whose deadline already passed: serial degrades anytime-style,
     the PDW enumeration's poll unwinds, and the baseline plan steps in *)
  let tk = Governor.create () in
  Governor.add_deadline tk ~clock:(fun () -> 1.0) ~deadline:0.5;
  let r = Opdw.optimize ~check:true ~token:tk wl.Opdw.Workload.shell join_sql in
  Alcotest.(check bool) "tagged fallback" true (r.Opdw.degraded = Some Opdw.Fallback);
  Engine.Appliance.reset_account app;
  let res = Opdw.run app r in
  Alcotest.(check (list string)) "fallback rows equal full-budget rows" base
    (canonical r res)

let test_degraded_never_cached () =
  let wl = Lazy.force w in
  let cache = Opdw.cache () in
  let options = options_with (limits_with ~max_memo_groups:4 ()) in
  let r1 = Opdw.optimize ~options ~cache wl.Opdw.Workload.shell join_sql in
  let r2 = Opdw.optimize ~options ~cache wl.Opdw.Workload.shell join_sql in
  Alcotest.(check bool) "first degraded" true (r1.Opdw.degraded = Some Opdw.Anytime);
  Alcotest.(check bool) "second degraded too" true (r2.Opdw.degraded = Some Opdw.Anytime);
  let st = Opdw.Plancache.stats cache in
  Alcotest.(check int) "no hits: degraded never admitted" 0 st.Opdw.Plancache.hits;
  Alcotest.(check int) "both compiles missed" 2 st.Opdw.Plancache.misses;
  Alcotest.(check int) "size stays zero" 0 st.Opdw.Plancache.size;
  Alcotest.(check int) "refusals counted" 2 st.Opdw.Plancache.evictions_degraded;
  (* the same statement at full budget caches normally *)
  let r3 = Opdw.optimize ~cache wl.Opdw.Workload.shell join_sql in
  let r4 = Opdw.optimize ~cache wl.Opdw.Workload.shell join_sql in
  Alcotest.(check bool) "full budget not degraded" true (r3.Opdw.degraded = None);
  Alcotest.(check bool) "r4 intact" true (r4.Opdw.degraded = None);
  let st = Opdw.Plancache.stats cache in
  Alcotest.(check int) "full-budget repeat hits" 1 st.Opdw.Plancache.hits

let test_fingerprint_carries_governor_knobs () =
  let wl = Lazy.force w in
  let shell = wl.Opdw.Workload.shell in
  let opts = Opdw.default_options ~node_count:4 in
  let r = Opdw.optimize ~check:false shell join_sql in
  let fp governor =
    Opdw.Plancache.fingerprint ~governor ~shell ~serial:opts.Opdw.serial
      ~pdw:opts.Opdw.pdw ~baseline:opts.Opdw.baseline ~via_xml:opts.Opdw.via_xml
      ~seed_collocated:opts.Opdw.seed_collocated r.Opdw.normalized
  in
  let base = fp Governor.no_limits in
  Alcotest.(check bool) "deadline re-keys" true
    (base <> fp (limits_with ~deadline:0.25 ()));
  Alcotest.(check bool) "sim deadline re-keys" true
    (base <> fp (limits_with ~sim_deadline:0.25 ()));
  Alcotest.(check bool) "memo budget re-keys" true
    (base <> fp (limits_with ~max_memo_groups:64 ()));
  Alcotest.(check string) "no knobs: stable key" base (fp Governor.no_limits)

(* -- the governed entry point -- *)

let test_governed_returns_oracle_rows () =
  let base = oracle join_sql in
  let wl = Lazy.force w in
  let gov = Opdw.Governed.create wl.Opdw.Workload.shell wl.Opdw.Workload.app in
  Opdw.Governed.reset gov;
  (match Opdw.Governed.run gov join_sql with
   | Opdw.Governed.Returned (r, res) ->
     Alcotest.(check bool) "not degraded" true (r.Opdw.degraded = None);
     Alcotest.(check (list string)) "rows equal oracle" base (canonical r res)
   | oc -> Alcotest.fail (Opdw.Governed.outcome_to_string oc))

let test_governed_sim_deadline_times_out () =
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  let options = options_with (limits_with ~sim_deadline:0.0 ()) in
  let gov = Opdw.Governed.create ~options ~breaker_threshold:0 wl.Opdw.Workload.shell app in
  Opdw.Governed.reset gov;
  (match Opdw.Governed.run gov join_sql with
   | Opdw.Governed.Timed_out Governor.Deadline -> ()
   | oc -> Alcotest.fail ("expected timeout, got " ^ Opdw.Governed.outcome_to_string oc));
  (* the interrupt must not poison the appliance: an ungoverned statement
     right after returns correct rows (the engine token was reset) *)
  let base = oracle join_sql in
  Alcotest.(check (list string)) "appliance reusable after timeout" base
    (oracle join_sql);
  ignore base

let test_governed_breaker_end_to_end () =
  let base = oracle join_sql in
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  Fun.protect
    ~finally:(fun () ->
        Engine.Appliance.set_fault app Fault.none;
        Engine.Appliance.reset_account app)
  @@ fun () ->
  (* the same fault at every attempt: execution can never succeed *)
  let persistent =
    Fault.schedule
      (List.concat_map
         (fun step ->
            List.map
              (fun attempt -> Fault.event ~attempt Fault.Temp_write step)
              (List.init 10 Fun.id))
         (List.init 12 Fun.id))
  in
  let gov =
    Opdw.Governed.create ~breaker_threshold:2 ~breaker_cooldown:0.5
      wl.Opdw.Workload.shell app
  in
  Opdw.Governed.reset gov;
  Engine.Appliance.set_fault app persistent;
  let expect_exhausted () =
    match Opdw.Governed.run gov join_sql with
    | Opdw.Governed.Exhausted { attempts; _ } ->
      Alcotest.(check int) "budget spent: retries + first attempt"
        (Fault.default_policy.Fault.retries + 1) attempts
    | oc -> Alcotest.fail ("expected exhaustion, got " ^ Opdw.Governed.outcome_to_string oc)
  in
  expect_exhausted ();
  expect_exhausted ();
  (* two hard failures: the breaker is open, the third run is shed *)
  (match Opdw.Governed.run gov join_sql with
   | Opdw.Governed.Shed { retry_after } ->
     Alcotest.(check bool) "cooldown reported" true (retry_after > 0.)
   | oc -> Alcotest.fail ("expected shed, got " ^ Opdw.Governed.outcome_to_string oc));
  (* charge the cooldown to the simulated clock, clear the fault: the
     half-open probe runs, succeeds, and closes the breaker *)
  Engine.Appliance.set_fault app Fault.none;
  let acct = app.Engine.Appliance.account in
  acct.Engine.Appliance.sim_time <- acct.Engine.Appliance.sim_time +. 1.0;
  (match Opdw.Governed.run gov join_sql with
   | Opdw.Governed.Returned (r, res) ->
     Alcotest.(check (list string)) "probe returns oracle rows" base (canonical r res)
   | oc -> Alcotest.fail ("expected probe success, got " ^ Opdw.Governed.outcome_to_string oc));
  let bs = Governor.Breaker.stats (Opdw.Governed.breaker gov) in
  Alcotest.(check int) "one trip" 1 bs.Governor.Breaker.trips;
  Alcotest.(check int) "one shed" 1 bs.Governor.Breaker.shed;
  Alcotest.(check int) "one probe" 1 bs.Governor.Breaker.probes;
  Alcotest.(check int) "probe closed the breaker" 1 bs.Governor.Breaker.closes

let test_governed_reset_uniform () =
  (* the one shared reset path: account plus gate/breaker counters zero
     together, so --repeat and the bench report per-iteration numbers *)
  let wl = Lazy.force w in
  let gov = Opdw.Governed.create wl.Opdw.Workload.shell wl.Opdw.Workload.app in
  Opdw.Governed.reset gov;
  (match Opdw.Governed.run gov join_sql with
   | Opdw.Governed.Returned _ -> ()
   | oc -> Alcotest.fail (Opdw.Governed.outcome_to_string oc));
  let app = Opdw.Governed.app gov in
  Alcotest.(check bool) "clock advanced" true
    (app.Engine.Appliance.account.Engine.Appliance.sim_time > 0.);
  Alcotest.(check int) "one admitted" 1
    (Governor.Gate.stats (Opdw.Governed.gate gov)).Governor.Gate.admitted;
  Opdw.Governed.reset gov;
  Alcotest.(check (float 0.)) "sim clock zeroed" 0.
    app.Engine.Appliance.account.Engine.Appliance.sim_time;
  Alcotest.(check int) "gate stats zeroed" 0
    (Governor.Gate.stats (Opdw.Governed.gate gov)).Governor.Gate.admitted;
  Alcotest.(check int) "breaker stats zeroed" 0
    (Governor.Breaker.stats (Opdw.Governed.breaker gov)).Governor.Breaker.trips

(* -- determinism across jobs -- *)

let test_sim_deadline_determinism_across_jobs () =
  (* a mid-execution simulated deadline: the engine polls the token only
     in the caller domain, so the trip point — and the simulated clock —
     must reproduce exactly at any domain count *)
  let wl = Lazy.force w in
  let app = wl.Opdw.Workload.app in
  let snapshot jobs =
    Par.with_pool ~jobs @@ fun pool ->
    Fun.protect
      ~finally:(fun () -> Engine.Appliance.set_pool app Par.sequential)
    @@ fun () ->
    Engine.Appliance.set_pool app pool;
    List.map
      (fun sim_deadline ->
         let options = options_with (limits_with ~sim_deadline ()) in
         let gov =
           Opdw.Governed.create ~options ~breaker_threshold:0
             wl.Opdw.Workload.shell app
         in
         Opdw.Governed.reset gov;
         let oc = Opdw.Governed.run gov join_sql in
         let rows =
           match oc with
           | Opdw.Governed.Returned (r, res) -> canonical r res
           | _ -> []
         in
         (Opdw.Governed.outcome_to_string oc, rows,
          app.Engine.Appliance.account.Engine.Appliance.sim_time))
      [ 0.0; 0.0002; 0.0005; 0.002; 1.0 ]
  in
  let s1 = snapshot 1 and s4 = snapshot 4 in
  List.iter2
    (fun (o1, r1, t1) (o4, r4, t4) ->
       Alcotest.(check string) "outcome identical at jobs 1 and 4" o1 o4;
       Alcotest.(check (list string)) "rows identical" r1 r4;
       Alcotest.(check (float 0.)) "simulated clock identical" t1 t4)
    s1 s4

let test_compile_deadline_determinism_across_jobs () =
  (* a wall deadline tripping mid-compilation, driven by a counting fake
     clock: every governor poll happens in the caller domain (serial
     exploration per applied rewrite, PDW enumeration per dependency
     level), so the poll count — and therefore the trip point and the
     Anytime/Fallback outcome — must reproduce exactly at any jobs *)
  let wl = Lazy.force w in
  let compile jobs budget =
    Par.with_pool ~jobs @@ fun pool ->
    let calls = ref 0 in
    let clock () = incr calls; float_of_int !calls in
    let tk = Governor.create () in
    Governor.add_deadline tk ~clock ~deadline:budget;
    let r =
      Opdw.optimize ~check:false ~token:tk ~pool wl.Opdw.Workload.shell
        join_sql
    in
    let p = Opdw.plan r in
    ((match r.Opdw.degraded with
      | Some d -> Opdw.degradation_to_string d
      | None -> "full"),
     !calls, p.Pdwopt.Pplan.dms_cost)
  in
  let outcomes =
    List.map
      (fun budget ->
         let ((o1, c1, d1) as s1) = compile 1 budget in
         let s4 = compile 4 budget in
         Alcotest.(check (triple string int (float 0.)))
           (Printf.sprintf "trip at clock budget %g identical at jobs 1 and 4"
              budget)
           s1 s4;
         ignore (c1, d1);
         o1)
      [ 0.5; 2.5; 6.5; 12.5; 25.5; 1e9 ]
  in
  (* the sweep must actually cover both regimes: an early trip that falls
     back to the baseline plan, and a budget large enough to finish *)
  Alcotest.(check bool) "some budget falls back" true
    (List.mem "fallback" outcomes);
  Alcotest.(check bool) "a large budget compiles fully" true
    (List.mem "full" outcomes)

(* -- the random property -- *)

(* Any (memo budget, simulated deadline, query) triple: the governed
   answer is either oracle rows (possibly from a degraded plan — which
   passed the analyzer, since check is on) or a structured refusal. *)
let prop_governed_never_wrong =
  let wl = Lazy.force w in
  let queries = Array.of_list Tpch.Queries.all in
  let oracles = Hashtbl.create 16 in
  let oracle_rows (q : Tpch.Queries.t) =
    match Hashtbl.find_opt oracles q.Tpch.Queries.id with
    | Some rows -> rows
    | None ->
      let rows = oracle q.Tpch.Queries.sql in
      Hashtbl.add oracles q.Tpch.Queries.id rows;
      rows
  in
  let gen =
    QCheck.make
      ~print:(fun (qi, mb, sd) ->
          Printf.sprintf "query=%s memo_budget=%s sim_deadline=%s"
            queries.(qi).Tpch.Queries.id
            (match mb with Some b -> string_of_int b | None -> "-")
            (match sd with Some d -> Printf.sprintf "%g" d | None -> "-"))
      QCheck.Gen.(
        triple (int_bound (Array.length queries - 1))
          (opt (int_range 1 40))
          (opt (oneofl [ 0.0; 0.0001; 0.0003; 0.001; 0.01 ])))
  in
  QCheck.Test.make ~name:"governed statements: oracle rows or structured refusal"
    ~count:30 gen
  @@ fun (qi, memo_budget, sim_deadline) ->
  let q = queries.(qi) in
  let limits =
    { Governor.deadline = None; sim_deadline; max_memo_groups = memo_budget }
  in
  let options = options_with limits in
  let gov =
    Opdw.Governed.create ~options ~breaker_threshold:0 wl.Opdw.Workload.shell
      wl.Opdw.Workload.app
  in
  Opdw.Governed.reset gov;
  (match Opdw.Governed.run gov q.Tpch.Queries.sql with
   | Opdw.Governed.Returned (r, res) ->
     let rows = canonical r res in
     if rows <> oracle_rows q then
       QCheck.Test.fail_report
         (Printf.sprintf "wrong rows for %s (degraded: %s)" q.Tpch.Queries.id
            (match r.Opdw.degraded with
             | Some d -> Opdw.degradation_to_string d
             | None -> "no"))
   | Opdw.Governed.Timed_out _ -> ()
   | oc ->
     QCheck.Test.fail_report
       (Printf.sprintf "unexpected outcome for %s: %s" q.Tpch.Queries.id
          (Opdw.Governed.outcome_to_string oc)));
  true

let suite =
  [ t "token: deadlines, cancel, poll" test_token_basics;
    t "token: several deadlines on distinct clocks" test_token_multiple_clocks;
    t "gate: overflow rejects with occupancy" test_gate_overflow;
    t "gate: FIFO service order" test_gate_fifo;
    t "gate: raising bodies never leak a slot" test_gate_releases_on_raise;
    t "breaker: closed/open/half-open transitions" test_breaker_transitions;
    t "memo budget degrades anytime, rows intact" test_anytime_memo_budget;
    t "expired token falls back to baseline, rows intact" test_fallback_on_expired_token;
    t "degraded plans are never cached" test_degraded_never_cached;
    t "fingerprint v3 carries governor knobs" test_fingerprint_carries_governor_knobs;
    t "governed statement returns oracle rows" test_governed_returns_oracle_rows;
    t "simulated deadline times out, appliance reusable" test_governed_sim_deadline_times_out;
    t "exhaustion trips the breaker, probe recovers" test_governed_breaker_end_to_end;
    t "reset zeroes account and governor counters together" test_governed_reset_uniform;
    t "sim deadlines reproduce at jobs 1 and 4" test_sim_deadline_determinism_across_jobs;
    t "compile deadlines reproduce at jobs 1 and 4"
      test_compile_deadline_determinism_across_jobs;
    QCheck_alcotest.to_alcotest prop_governed_never_wrong ]
