(* Elastic topology (DESIGN.md §14): online grow / re-key as phased moves,
   the workload-driven re-distribution advisor, and the elastic driver. The
   core invariants under test: a committed move serves exactly the oracle
   rows on the new layout; an aborted move leaves the source catalog
   bit-identical (stats_version, plan-cache fingerprint, storage, epoch);
   fault draws inside move steps compose with decommission; and a random
   grow / re-key / shrink sequence under a random fault seed reproduces
   rows and the simulated accounting exactly at any [--jobs]. *)

let t name f = Alcotest.test_case name `Quick f

let join_sql =
  "SELECT c_custkey, o_orderdate FROM orders, customer WHERE o_custkey = c_custkey"

(* a fresh workload per test: moves and decommissions replace the
   appliance, which must never disturb other tests' fixtures *)
let workload ?(node_count = 2) () = Opdw.Workload.tpch ~node_count ~sf:0.001 ()

(* fault-free oracle rows per bundled query id (row semantics do not depend
   on the node count, so one 2-node pass serves every topology test) *)
let oracle =
  lazy
    (let wl = workload () in
     let table = Hashtbl.create 16 in
     List.iter
       (fun (q : Tpch.Queries.t) ->
          let r = Opdw.optimize wl.Opdw.Workload.shell q.Tpch.Queries.sql in
          Hashtbl.replace table q.Tpch.Queries.id
            (Engine.Local.canonical (Opdw.run wl.Opdw.Workload.app r)))
       Tpch.Queries.all;
     table)

let oracle_rows id = Hashtbl.find (Lazy.force oracle) id

let run_fresh (app : Engine.Appliance.t) sql =
  let r = Opdw.optimize app.Engine.Appliance.shell sql in
  Engine.Local.canonical (Opdw.run app r)

(* per-node, per-table row counts: the storage identity an aborted move
   must preserve exactly *)
let storage_snapshot (app : Engine.Appliance.t) =
  Array.to_list
    (Array.map
       (fun store ->
          Hashtbl.fold (fun k rs acc -> (k, Engine.Rset.count rs) :: acc) store []
          |> List.sort compare)
       app.Engine.Appliance.storage)

(* -- the deterministic Zipf storm source -- *)

let test_zipf () =
  let storm = Topology.Zipf.storm ~seed:7 ~length:400 8 in
  Alcotest.(check (list int)) "same seed, same storm" storm
    (Topology.Zipf.storm ~seed:7 ~length:400 8);
  Alcotest.(check bool) "different seed, different storm" false
    (storm = Topology.Zipf.storm ~seed:8 ~length:400 8);
  Alcotest.(check bool) "picks in range" true
    (List.for_all (fun k -> k >= 0 && k < 8) storm);
  let count k = List.length (List.filter (( = ) k) storm) in
  Alcotest.(check bool) "rank 0 dominates the tail" true (count 0 > count 7);
  Alcotest.(check bool) "head is not the whole storm" true (count 0 < 400)

(* -- the shared re-partition pricing helper (shrink, grow, re-key) -- *)

let test_pricing_helper () =
  let r = Engine.Appliance.move_rates Engine.Appliance.default_hw in
  let bytes = 12345.0 and rows = 678.0 in
  let expect =
    (bytes
     *. (r.Dms.Cost.r_reader_byte +. r.Dms.Cost.r_network_byte
         +. r.Dms.Cost.r_writer_byte))
    +. (rows
        *. (r.Dms.Cost.r_reader_row +. r.Dms.Cost.r_network_row
            +. r.Dms.Cost.r_writer_row))
  in
  Alcotest.(check (float 0.))
    "reader+network+writer pipeline, components summed" expect
    (Dms.Cost.repartition_seconds r ~bytes ~rows);
  Alcotest.(check (float 0.)) "empty move is free" 0.
    (Dms.Cost.repartition_seconds r ~bytes:0. ~rows:0.)

(* losing the last compute node is a structured fault-plane outcome, not a
   programming error: storm drivers tally it instead of crashing *)
let test_last_node_decommission_structured () =
  let wl = workload () in
  let app1 = Engine.Appliance.decommission wl.Opdw.Workload.app ~node:0 in
  Alcotest.(check int) "one node left" 1 app1.Engine.Appliance.nodes;
  (match Engine.Appliance.decommission app1 ~node:0 with
   | _ -> Alcotest.fail "decommissioning the last node should be Exhausted"
   | exception Fault.Exhausted { failure; attempts } ->
     Alcotest.(check bool) "names the crash site" true
       (failure.Fault.site = Fault.Node_crash);
     Alcotest.(check int) "single attempt" 1 attempts
   | exception Invalid_argument _ ->
     Alcotest.fail "bare invalid_arg leaked out of the fault plane");
  (* on a multi-node appliance a bad node id is still a caller bug *)
  match Engine.Appliance.decommission (workload ()).Opdw.Workload.app ~node:9 with
  | _ -> Alcotest.fail "no such node should still be invalid_arg"
  | exception Fault.Exhausted _ ->
    Alcotest.fail "a caller bug must not masquerade as a fault outcome"
  | exception Invalid_argument _ -> ()

let test_recommission_grows_online () =
  let wl = workload () in
  let app = wl.Opdw.Workload.app in
  let base = run_fresh app join_sql in
  let sim0 = app.Engine.Appliance.account.Engine.Appliance.sim_time in
  let app4 = Engine.Appliance.recommission app ~nodes:4 in
  Alcotest.(check int) "grown to 4 nodes" 4 app4.Engine.Appliance.nodes;
  Alcotest.(check (list int)) "new ids continue after the old"
    [ 0; 1; 2; 3 ] app4.Engine.Appliance.live;
  Alcotest.(check int) "topology epoch bumped" 1 app4.Engine.Appliance.epoch;
  Alcotest.(check int) "shell rebuilt at the new width" 4
    (Catalog.Shell_db.node_count app4.Engine.Appliance.shell);
  Alcotest.(check bool) "move cost charged to the simulated clock" true
    (app4.Engine.Appliance.account.Engine.Appliance.sim_time > sim0);
  Alcotest.(check (list string)) "rows identical on the wider topology" base
    (run_fresh app4 join_sql)

let test_redistribute_rekeys_online () =
  let wl = workload ~node_count:4 () in
  let app = wl.Opdw.Workload.app in
  let base = run_fresh app join_sql in
  let cost shell =
    (Opdw.plan (Opdw.optimize shell join_sql)).Pdwopt.Pplan.dms_cost
  in
  let before = cost wl.Opdw.Workload.shell in
  let app' = Engine.Appliance.redistribute app ~table:"orders" ~cols:[ "o_custkey" ] in
  (match (Catalog.Shell_db.find_exn app'.Engine.Appliance.shell "orders").Catalog.Shell_db.dist with
   | Catalog.Distribution.Hash_partitioned [ "o_custkey" ] -> ()
   | _ -> Alcotest.fail "orders not re-keyed to o_custkey");
  Alcotest.(check int) "same node count" 4 app'.Engine.Appliance.nodes;
  Alcotest.(check (list string)) "rows identical under the new key" base
    (run_fresh app' join_sql);
  Alcotest.(check bool)
    "collocating the join strictly lowers the modelled DMS cost" true
    (cost app'.Engine.Appliance.shell < before)

(* an aborted move must leave the source appliance bit-identical: catalog
   version, plan-cache fingerprint, storage, and epoch all unchanged *)
let test_abort_bit_identical () =
  let wl = workload () in
  let app = wl.Opdw.Workload.app and shell = wl.Opdw.Workload.shell in
  let cache = Opdw.cache () in
  let fp () = (Opdw.optimize ~cache shell join_sql).Opdw.fingerprint in
  let base = run_fresh app join_sql in
  let sv0 = Catalog.Shell_db.stats_version shell in
  let fp0 = fp () and snap0 = storage_snapshot app in
  let m =
    Engine.Appliance.begin_move app ~node_count:3 ~live:[ 0; 1; 2 ]
      ~dist_of:(fun tbl -> tbl.Catalog.Shell_db.dist)
  in
  Alcotest.(check bool) "hash tables pend as priced copy steps" true
    (m.Engine.Appliance.m_pending <> []);
  Engine.Appliance.copy_step m;
  Engine.Appliance.abort_move m;
  Alcotest.(check int) "stats_version untouched" sv0
    (Catalog.Shell_db.stats_version shell);
  Alcotest.(check bool) "fingerprint bit-identical" true (fp0 = fp ());
  Alcotest.(check bool) "storage bit-identical" true
    (snap0 = storage_snapshot app);
  Alcotest.(check int) "epoch untouched" 0 app.Engine.Appliance.epoch;
  Alcotest.(check bool) "shadow partitions dropped" true
    (Array.for_all
       (fun store -> Hashtbl.length store = 0)
       m.Engine.Appliance.m_target.Engine.Appliance.storage);
  Alcotest.(check (list string)) "source still serves oracle rows" base
    (run_fresh app join_sql)

(* a move whose copy steps exhaust the retry budget aborts clean: the
   failure is structured and the pre-move layout keeps serving *)
let test_exhausted_move_aborts_clean () =
  let wl = workload () in
  let app = wl.Opdw.Workload.app and shell = wl.Opdw.Workload.shell in
  let base = run_fresh app join_sql in
  let sv0 = Catalog.Shell_db.stats_version shell in
  let snap0 = storage_snapshot app in
  (* the same temp-write fault at every step and attempt: no copy step can
     ever succeed, so the move must exhaust and roll back *)
  let persistent =
    Fault.schedule
      (List.concat_map
         (fun step ->
            List.map
              (fun attempt -> Fault.event ~attempt Fault.Temp_write step)
              (List.init 10 Fun.id))
         (List.init 24 Fun.id))
  in
  Engine.Appliance.set_fault app persistent;
  (match Engine.Appliance.recommission app ~nodes:4 with
   | _ -> Alcotest.fail "persistent copy fault should exhaust the budget"
   | exception Fault.Exhausted { failure; _ } ->
     Alcotest.(check bool) "failure names the site" true
       (failure.Fault.site = Fault.Temp_write));
  Engine.Appliance.set_fault app Fault.none;
  Alcotest.(check int) "stats_version untouched" sv0
    (Catalog.Shell_db.stats_version shell);
  Alcotest.(check bool) "storage untouched" true (snap0 = storage_snapshot app);
  Alcotest.(check int) "still 2 nodes" 2 app.Engine.Appliance.nodes;
  Alcotest.(check (list string)) "old layout keeps serving" base
    (run_fresh app join_sql)

(* fingerprint v6: the topology epoch re-keys plans — two layouts that
   agree on every other knob (node count, live set, stats version) must
   never alias across a move *)
let test_fingerprint_topology_epoch () =
  let wl = workload () in
  let cache = Opdw.cache () in
  let fp topology =
    match
      (Opdw.optimize ~cache ~topology wl.Opdw.Workload.shell join_sql).Opdw.fingerprint
    with
    | Some fp -> fp
    | None -> Alcotest.fail "expected a fingerprint when a cache is armed"
  in
  let fp0 = fp 0 and fp1 = fp 1 in
  Alcotest.(check bool) "v6 header" true
    (String.length fp0 > 3 && String.sub fp0 0 3 = "v6;");
  Alcotest.(check bool) "epochs never alias" true (fp0 <> fp1);
  Alcotest.(check bool) "same epoch hits" true (fp0 = fp 0)

(* -- the advisor + elastic driver end to end -- *)

(* serve a skewed storm through the elastic driver, grow 2 -> 4 mid-storm,
   apply the advisor's proposals as online re-keys, keep serving between
   copy steps: availability must stay 1.0 (every answer oracle-equal) and
   the accepted proposals must be strict modelled-cost wins *)
let test_elastic_storm_grow_and_rekey () =
  let wl = workload () in
  let app = wl.Opdw.Workload.app in
  let el =
    Topology.Elastic.create ~cache:(Opdw.cache ()) ~fault:Fault.none
      wl.Opdw.Workload.shell app
  in
  let bundle = Array.of_list Tpch.Queries.all in
  let storm =
    Topology.Zipf.storm ~seed:3 ~length:16 (Array.length bundle)
    |> List.map (fun k -> bundle.(k))
  in
  let queue = ref storm and mismatches = ref 0 and served = ref 0 in
  let serve_one () =
    match !queue with
    | [] -> ()
    | q :: rest ->
      queue := rest;
      let _, rows = Topology.Elastic.run el q.Tpch.Queries.sql in
      incr served;
      if Engine.Local.canonical rows <> oracle_rows q.Tpch.Queries.id then
        incr mismatches
  in
  for _ = 1 to 8 do serve_one () done;
  Topology.Elastic.grow ~between:serve_one el ~nodes:4;
  Alcotest.(check int) "grown mid-storm" 4 (Topology.Elastic.nodes el);
  let advice = Topology.Elastic.advise el in
  Alcotest.(check bool) "head join mis-key found" true
    (List.exists
       (fun (p : Topology.Advisor.proposal) -> p.Topology.Advisor.p_table = "orders")
       advice.Topology.Advisor.a_proposals);
  Alcotest.(check bool) "strict modelled-cost win" true
    (advice.Topology.Advisor.a_proposed < advice.Topology.Advisor.a_baseline);
  List.iter
    (fun (p : Topology.Advisor.proposal) ->
       Alcotest.(check bool)
         (Printf.sprintf "proposal %s is a strict win" p.Topology.Advisor.p_table)
         true
         (p.Topology.Advisor.p_after < p.Topology.Advisor.p_before))
    advice.Topology.Advisor.a_proposals;
  Topology.Elastic.apply ~between:serve_one el advice;
  while !queue <> [] do serve_one () done;
  Alcotest.(check int) "whole storm served" 16 !served;
  Alcotest.(check int) "availability 1.0: zero non-oracle answers" 0 !mismatches;
  Alcotest.(check bool) "epoch advanced by the moves" true
    (Topology.Elastic.epoch el >= 2)

(* -- property: a random grow / re-key / shrink sequence under a random
      fault seed reproduces rows and accounting at any --jobs -- *)

type op = Grow | Rekey of string * string | Shrink

let op_to_string = function
  | Grow -> "grow"
  | Rekey (t, c) -> Printf.sprintf "rekey(%s,%s)" t c
  | Shrink -> "shrink"

let apply_op (el : Topology.Elastic.t) = function
  | Grow -> Topology.Elastic.grow el ~nodes:(Topology.Elastic.nodes el + 1)
  | Rekey (table, col) -> Topology.Elastic.redistribute el ~table ~cols:[ col ]
  | Shrink ->
    if Topology.Elastic.nodes el > 1 then begin
      let app = Topology.Elastic.app el in
      let node = app.Engine.Appliance.nodes - 1 in
      Topology.Elastic.install el (Engine.Appliance.decommission app ~node)
    end

let arb_sequence =
  let open QCheck in
  let op =
    Gen.oneofl
      [ Grow; Shrink; Rekey ("orders", "o_custkey");
        Rekey ("customer", "c_nationkey"); Rekey ("orders", "o_orderkey") ]
  in
  let gen =
    Gen.(
      let* ops = list_size (int_range 1 3) op in
      let* seed = int_range 1 1000 in
      return (ops, seed))
  in
  let print (ops, seed) =
    Printf.sprintf "seed=%d ops=[%s]" seed
      (String.concat "; " (List.map op_to_string ops))
  in
  QCheck.make ~print gen

(* one full run: apply the topology sequence, then serve every bundled
   query; returns either the rows + deterministic accounting, or the
   structured exhaustion — whichever it is must reproduce exactly *)
let run_sequence ~jobs (ops, seed) =
  Par.with_pool ~jobs @@ fun pool ->
  let wl = workload () in
  let app = wl.Opdw.Workload.app in
  Engine.Appliance.set_pool app pool;
  let el =
    Topology.Elastic.create ~cache:(Opdw.cache ())
      ~fault:(Fault.seeded ~seed ~rate:0.05 ())
      wl.Opdw.Workload.shell app
  in
  match
    List.iter (apply_op el) ops;
    List.map
      (fun (q : Tpch.Queries.t) ->
         let _, rows = Topology.Elastic.run el q.Tpch.Queries.sql in
         (q.Tpch.Queries.id, Engine.Local.canonical rows))
      Tpch.Queries.all
  with
  | served ->
    let a = (Topology.Elastic.app el).Engine.Appliance.account in
    Ok
      (served, a.Engine.Appliance.sim_time, a.Engine.Appliance.dms_time,
       a.Engine.Appliance.bytes_moved, a.Engine.Appliance.rows_moved,
       a.Engine.Appliance.injected, a.Engine.Appliance.retries,
       a.Engine.Appliance.replans, Topology.Elastic.nodes el,
       Topology.Elastic.epoch el)
  | exception Fault.Exhausted { failure; attempts } ->
    Error (Fault.failure_to_string failure, attempts)

let prop_topology_determinism =
  QCheck.Test.make
    ~name:"random grow/re-key/shrink under faults: oracle rows, jobs-1 == jobs-4"
    ~count:4 arb_sequence
    (fun seq ->
       let seq_run = run_sequence ~jobs:1 seq in
       let par_run = run_sequence ~jobs:4 seq in
       if seq_run <> par_run then
         QCheck.Test.fail_report "jobs=1 and jobs=4 runs diverged";
       (match seq_run with
        | Ok (served, _, _, _, _, _, _, _, _, _) ->
          List.iter
            (fun (id, rows) ->
               if rows <> oracle_rows id then
                 QCheck.Test.fail_reportf "%s returned non-oracle rows" id)
            served
        | Error _ -> ());
       true)

let suite =
  [ t "zipf storm is pure and skewed" test_zipf;
    t "repartition pricing helper algebra" test_pricing_helper;
    t "last-node decommission is a structured fault"
      test_last_node_decommission_structured;
    t "recommission grows online to oracle rows" test_recommission_grows_online;
    t "redistribute re-keys online, lower modelled cost"
      test_redistribute_rekeys_online;
    t "aborted move leaves the catalog bit-identical" test_abort_bit_identical;
    t "exhausted move aborts clean and keeps serving"
      test_exhausted_move_aborts_clean;
    t "fingerprint v6 keys the topology epoch" test_fingerprint_topology_epoch;
    t "elastic storm: grow + advisor re-key, availability 1.0"
      test_elastic_storm_grow_and_rekey;
    QCheck_alcotest.to_alcotest prop_topology_determinism ]
