(* The feedback loop: observation log persistence, miss detection, λ
   re-fitting, the LKG plan store's hysteresis machine, and the closed
   execution → calibration → fallback cycle end to end. *)

module Fb = Opdw.Feedback
module Log = Fb.Log
module Store = Fb.Store

let t name f = Alcotest.test_case name `Quick f
let checkf = Alcotest.(check (float 1e-9))

let geomean = function
  | [] -> 1.
  | xs ->
    exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float_of_int (List.length xs))

let fresh_workload () = Opdw.Workload.tpch ~node_count:4 ~sf:0.002 ()

let sql_of id =
  match Tpch.Queries.find id with
  | Some q -> q.Tpch.Queries.sql
  | None -> Alcotest.fail ("no bundled query " ^ id)

(* -- the LKG plan store -- *)

let test_store_hysteresis () =
  let s = Store.create () in
  (* payloads are opaque to the store; strings suffice *)
  let ob ?(degraded = false) fp sim =
    Store.observe s ~statement:"q" ~fingerprint:fp ~degraded ~sim ~wall:0. fp
  in
  Alcotest.(check string) "first run sets LKG" "lkg-set"
    (Store.outcome_name (ob "A" 1.0));
  Alcotest.(check string) "in-band plan is recorded" "recorded"
    (Store.outcome_name (ob "B" 1.1));
  Alcotest.(check string) "first regression" "regressed(1)"
    (Store.outcome_name (ob "C" 1.5));
  Alcotest.(check string) "in-band run resets the streak" "recorded"
    (Store.outcome_name (ob "C" 1.0));
  Alcotest.(check string) "streak restarts from one" "regressed(1)"
    (Store.outcome_name (ob "C" 1.5));
  Alcotest.(check string) "second consecutive regression quarantines"
    "quarantined"
    (Store.outcome_name (ob "C" 1.6));
  Alcotest.(check bool) "C quarantined" true
    (Store.is_quarantined s ~statement:"q" ~fingerprint:"C");
  Alcotest.(check bool) "A not quarantined" false
    (Store.is_quarantined s ~statement:"q" ~fingerprint:"A");
  (* pre-execution resolution: quarantined fingerprints get the LKG *)
  (match Store.resolve s ~statement:"q" ~fingerprint:"C" with
   | Some p -> Alcotest.(check string) "fallback serves LKG payload" "A" p
   | None -> Alcotest.fail "expected an LKG fallback");
  Alcotest.(check bool) "LKG itself resolves to no substitution" true
    (Store.resolve s ~statement:"q" ~fingerprint:"A" = None);
  Alcotest.(check int) "fallbacks counted" 1 (Store.fallbacks s);
  Alcotest.(check int) "regressions counted" 3 (Store.regressions s);
  Alcotest.(check string) "strictly better plan is promoted" "lkg-improved"
    (Store.outcome_name (ob "D" 0.8));
  (match Store.lkg s "q" with
   | Some (fp, _, best) ->
     Alcotest.(check string) "LKG fingerprint" "D" fp;
     checkf "LKG best sim" 0.8 best
   | None -> Alcotest.fail "expected an LKG")

let test_store_degraded_never_lkg () =
  let s = Store.create () in
  let ob ~degraded fp sim =
    Store.observe s ~statement:"q" ~fingerprint:fp ~degraded ~sim ~wall:0. fp
  in
  Alcotest.(check string) "degraded before any LKG" "ignored-degraded"
    (Store.outcome_name (ob ~degraded:true "A" 0.5));
  Alcotest.(check bool) "no LKG from a degraded run" true (Store.lkg s "q" = None);
  Alcotest.(check string) "clean run sets LKG" "lkg-set"
    (Store.outcome_name (ob ~degraded:false "B" 1.0));
  Alcotest.(check string) "faster degraded run still ignored" "ignored-degraded"
    (Store.outcome_name (ob ~degraded:true "C" 0.1));
  match Store.lkg s "q" with
  | Some (fp, _, _) -> Alcotest.(check string) "LKG unchanged" "B" fp
  | None -> Alcotest.fail "expected an LKG"

(* -- log persistence -- *)

let sample_log () =
  let l = Log.create () in
  Log.append l
    { Log.r_statement = "select \"odd\"\nname from t";
      r_fingerprint = "v5;stats=3|tree";
      r_ops =
        [ { Log.o_group = 7; o_op = "HashJoin"; o_table = None;
            o_cols = [ ("lineitem", "l_orderkey"); ("orders", "o_orderkey") ];
            o_est = 1. /. 3.; o_actual = 12345.75 };
          { Log.o_group = 2; o_op = "TableScan"; o_table = Some "lineitem";
            o_cols = []; o_est = 0.; o_actual = 6001. } ];
      r_dms =
        [ { Log.d_component = Dms.Calibrate.Network; d_bytes = 8192.;
            d_seconds = 1.9073486e-05 };
          { Log.d_component = Dms.Calibrate.Blkcpy; d_bytes = 123.;
            d_seconds = 0.1 /. 7. } ];
      r_sim = 0.00123456789; r_wall = 0.25; r_degraded = false };
  Log.append l
    { Log.r_statement = "q2"; r_fingerprint = "fp2"; r_ops = []; r_dms = [];
      r_sim = 1e-9; r_wall = 0.; r_degraded = true };
  l

let test_log_roundtrip () =
  let l = sample_log () in
  let text = Log.to_string l in
  let back = Log.of_string text in
  Alcotest.(check int) "record count" 2 (Log.length back);
  (* structural float equality: the %h persistence must be bit-exact *)
  Alcotest.(check bool) "records round-trip bit-exact" true
    (Log.records back = Log.records l);
  Alcotest.(check bool) "render is stable" true (Log.to_string back = text)

let test_log_rejects_garbage () =
  let rejects what text =
    match Log.of_string text with
    | _ -> Alcotest.fail ("accepted " ^ what)
    | exception Log.Parse_error _ -> ()
  in
  rejects "unknown keyword" "# opdw feedback log v1\nbogus 1 2 3\n";
  rejects "op outside a record" "# opdw feedback log v1\nop 1 \"x\" \"-\" 0x0p+0 0x0p+0 -\n";
  rejects "unknown component"
    "# opdw feedback log v1\nrecord \"q\" \"fp\" 0x0p+0 0x0p+0 0\ndms warp 0x1p+3 0x1p-9\nend\n"

(* -- miss detection -- *)

let test_misses_columns () =
  let op ~est ~actual cols =
    { Log.o_group = 0; o_op = "Filter"; o_table = None; o_cols = cols;
      o_est = est; o_actual = actual }
  in
  let rc ops =
    { Log.r_statement = "q"; r_fingerprint = "fp"; r_ops = ops; r_dms = [];
      r_sim = 0.; r_wall = 0.; r_degraded = false }
  in
  let recs =
    [ rc
        [ op ~est:999. ~actual:9. [ ("T", "A") ];       (* 100x miss *)
          op ~est:10. ~actual:11. [ ("t", "b") ] ];     (* within threshold *)
      rc [ op ~est:9. ~actual:999. [ ("t", "a"); ("u", "c") ] ] ]
  in
  match Fb.Misses.columns ~threshold:2.0 recs with
  | [ a; c ] ->
    (* sorted by (table, column); keys lowercased and deduplicated *)
    Alcotest.(check string) "first table" "t" a.Fb.Misses.m_table;
    Alcotest.(check string) "first column" "a" a.Fb.Misses.m_column;
    Alcotest.(check int) "both misses counted" 2 a.Fb.Misses.m_ops;
    checkf "worst ratio" 100. a.Fb.Misses.m_worst;
    Alcotest.(check string) "second table" "u" c.Fb.Misses.m_table;
    Alcotest.(check string) "second column" "c" c.Fb.Misses.m_column
  | ms -> Alcotest.fail (Printf.sprintf "expected 2 missed columns, got %d" (List.length ms))

(* -- λ re-fitting -- *)

let test_lambda_fit () =
  let k = 2.5e-9 in
  let dms bytes =
    { Log.d_component = Dms.Calibrate.Network; d_bytes = bytes;
      d_seconds = k *. bytes }
  in
  let recs =
    [ { Log.r_statement = "q"; r_fingerprint = "fp";
        r_ops = []; r_dms = [ dms 1024.; dms 65536.; dms 300. ];
        r_sim = 0.; r_wall = 0.; r_degraded = false } ]
  in
  let lambdas, fits = Fb.Lambda.fit recs in
  Alcotest.(check (float 1e-15)) "network λ recovered" k
    lambdas.Dms.Cost.l_network;
  (* components with no observations keep the base value *)
  checkf "writer λ kept" Dms.Cost.default_lambdas.Dms.Cost.l_writer
    lambdas.Dms.Cost.l_writer;
  let net =
    List.find
      (fun (f : Fb.Lambda.fit) -> f.Fb.Lambda.f_component = Dms.Calibrate.Network)
      fits
  in
  Alcotest.(check int) "sample count" 3 net.Fb.Lambda.f_samples;
  Alcotest.(check bool) "perfect fit" true (net.Fb.Lambda.f_error < 1e-9)

(* -- catalog plumbing -- *)

let test_update_col_stats_bumps_version () =
  let sh = Fixtures.mini_shell () in
  let v0 = Catalog.Shell_db.stats_version sh in
  Catalog.Shell_db.update_col_stats sh "cust" "ck" (Catalog.Col_stats.make ());
  Alcotest.(check int) "stats_version bumped" (v0 + 1)
    (Catalog.Shell_db.stats_version sh);
  Alcotest.(check bool) "unknown table rejected" true
    (match Catalog.Shell_db.update_col_stats sh "nope" "x" (Catalog.Col_stats.make ()) with
     | () -> false
     | exception Invalid_argument _ -> true)

(* -- the closed loop, end to end -- *)

let model_err (oc : Fb.run_outcome) =
  Fb.model_error oc.Fb.res ~dms_time:oc.Fb.observed_dms

let test_calibrate_improves_model_error () =
  let w = fresh_workload () in
  let fb = Fb.create w.Opdw.Workload.shell w.Opdw.Workload.app in
  let sqls = List.map sql_of [ "Q1"; "Q3"; "Q6" ] in
  let before = List.map (fun s -> model_err (Fb.run fb s)) sqls in
  let v0 = Catalog.Shell_db.stats_version w.Opdw.Workload.shell in
  let cal = Fb.calibrate fb in
  Alcotest.(check int) "epoch bumped" 1 cal.Fb.new_epoch;
  Alcotest.(check bool) "some column refined" true (cal.Fb.refined <> []);
  Alcotest.(check bool) "stats_version advanced" true
    (Catalog.Shell_db.stats_version w.Opdw.Workload.shell > v0);
  let after = List.map (fun s -> model_err (Fb.run fb s)) sqls in
  Alcotest.(check bool)
    (Printf.sprintf "geomean error shrank (%.4g -> %.4g)" (geomean before)
       (geomean after))
    true
    (geomean after < geomean before)

let test_bounds_sound_after_refinement () =
  (* R11 soundness: executed row counts must stay inside the analyzer's
     static bounds computed from the refined statistics *)
  let w = fresh_workload () in
  let shell = w.Opdw.Workload.shell and app = w.Opdw.Workload.app in
  let fb = Fb.create shell app in
  let sql = sql_of "Q3" in
  ignore (Fb.run fb sql);
  ignore (Fb.calibrate fb);
  let r =
    Opdw.optimize ~options:(Fb.options fb) ~cache:(Fb.plan_cache fb)
      ~calibration:(Fb.epoch fb) shell sql
  in
  let actx =
    Analysis.context ~shell ~reg:r.Opdw.memo.Memo.reg
      ~nodes:(Fb.options fb).Opdw.pdw.Pdwopt.Enumerate.nodes
  in
  Engine.Appliance.set_bounds app (Some (Analysis.group_bounds actx (Opdw.plan r)));
  ignore (Fb.run fb sql);
  Alcotest.(check int) "no bound violations post-refinement" 0
    app.Engine.Appliance.bound_violations;
  Engine.Appliance.set_bounds app None

let test_regression_falls_back_to_lkg () =
  let w = fresh_workload () in
  let shell = w.Opdw.Workload.shell in
  let fb = Fb.create shell w.Opdw.Workload.app in
  let sql = sql_of "Q3" in
  let oc1 = Fb.run fb sql in
  Alcotest.(check string) "round 1 sets LKG" "lkg-set"
    (Store.outcome_name oc1.Fb.store_outcome);
  (* adversarial stats skew: the optimizer now believes lineitem is tiny,
     recompiles, and picks a regressing movement strategy *)
  let tbl = Catalog.Shell_db.find_exn shell "lineitem" in
  Catalog.Shell_db.set_stats shell "lineitem"
    { tbl.Catalog.Shell_db.stats with Catalog.Tbl_stats.row_count = 10. };
  let oc2 = Fb.run fb sql in
  let oc3 = Fb.run fb sql in
  let oc4 = Fb.run fb sql in
  Alcotest.(check string) "round 2 regresses" "regressed(1)"
    (Store.outcome_name oc2.Fb.store_outcome);
  Alcotest.(check string) "round 3 quarantines" "quarantined"
    (Store.outcome_name oc3.Fb.store_outcome);
  Alcotest.(check bool) "round 4 serves the LKG fallback" true oc4.Fb.fellback;
  Alcotest.(check string) "fallback runs the LKG plan"
    (Option.get oc1.Fb.res.Opdw.fingerprint)
    (Option.get oc4.Fb.res.Opdw.fingerprint);
  Alcotest.(check bool) "fallback rows are the round-1 rows" true
    (Engine.Local.canonical oc4.Fb.rows = Engine.Local.canonical oc1.Fb.rows);
  Alcotest.(check int) "one fallback counted" 1 (Store.fallbacks (Fb.store fb))

let test_plan_identity_across_jobs () =
  (* the whole loop — run, calibrate, run — is a pure function of the log
     and the seed: any --jobs yields bit-identical plans, sims and λs *)
  let cycle jobs =
    Par.with_pool ~jobs @@ fun pool ->
    let w = fresh_workload () in
    Engine.Appliance.set_pool w.Opdw.Workload.app pool;
    let fb = Fb.create w.Opdw.Workload.shell w.Opdw.Workload.app in
    let sql = sql_of "Q3" in
    ignore (Fb.run fb sql);
    let cal = Fb.calibrate fb in
    let oc = Fb.run fb sql in
    (Option.get oc.Fb.res.Opdw.fingerprint, oc.Fb.observed_sim, cal.Fb.lambdas)
  in
  let f1, s1, l1 = cycle 1 in
  let f4, s4, l4 = cycle 4 in
  Alcotest.(check string) "fingerprints identical at jobs 1 vs 4" f1 f4;
  Alcotest.(check bool) "simulated time bit-identical" true (s1 = s4);
  Alcotest.(check bool) "re-fitted λs bit-identical" true (l1 = l4)

let suite =
  [ t "store: hysteresis / quarantine / fallback" test_store_hysteresis;
    t "store: degraded never LKG" test_store_degraded_never_lkg;
    t "log: bit-exact round-trip" test_log_roundtrip;
    t "log: rejects garbage" test_log_rejects_garbage;
    t "misses: threshold, dedup, order" test_misses_columns;
    t "lambda: fit recovers λ, keeps base" test_lambda_fit;
    t "catalog: update_col_stats bumps version" test_update_col_stats_bumps_version;
    t "loop: calibration shrinks model error" test_calibrate_improves_model_error;
    t "loop: bounds stay sound after refinement" test_bounds_sound_after_refinement;
    t "loop: regression falls back to LKG" test_regression_falls_back_to_lkg;
    t "loop: plan identity at jobs 1 vs 4" test_plan_identity_across_jobs ]
