(* The appliance simulator: local executor operators, DMS runtime routing,
   loading, accounting. *)

open Catalog
open Algebra

let t name f = Alcotest.test_case name `Quick f

(* a tiny standalone registry/environment for executor unit tests *)
let reg = Registry.create ()
let col name ty = Registry.fresh reg ~name ~ty ~width:8. (Registry.Derived name)
let ca = col "a" Types.Tint
let cb = col "b" Types.Tint
let cc = col "c" Types.Tstring
let cx = col "x" Types.Tint
let cy = col "y" Types.Tint
let agg_out = col "sum_b" Types.Tint
let cnt_out = col "cnt" Types.Tint

let rset layout rows = { Engine.Local.layout; rows }
let rows_of l = List.map Array.of_list l
let no_table _ = []

let exec op children = Engine.Local.exec_op ~read_table:no_table op children

let test_filter () =
  let input = rset [ ca; cb ] (rows_of [ [ Value.Int 1; Value.Int 10 ]; [ Value.Int 2; Value.Int 20 ] ]) in
  let r = exec (Memo.Physop.Filter (Expr.Bin (Expr.Gt, Expr.Col cb, Expr.Lit (Value.Int 15)))) [ input ] in
  Alcotest.(check int) "one row" 1 (List.length r.Engine.Local.rows)

let test_filter_null_is_false () =
  let input = rset [ ca ] (rows_of [ [ Value.Null ]; [ Value.Int 5 ] ]) in
  let r = exec (Memo.Physop.Filter (Expr.Bin (Expr.Gt, Expr.Col ca, Expr.Lit (Value.Int 0)))) [ input ] in
  Alcotest.(check int) "null comparison filters out" 1 (List.length r.Engine.Local.rows)

let test_compute () =
  let input = rset [ ca ] (rows_of [ [ Value.Int 3 ] ]) in
  let out = col "a2" Types.Tint in
  let r =
    exec (Memo.Physop.Compute [ (out, Expr.Bin (Expr.Mul, Expr.Col ca, Expr.Lit (Value.Int 2))) ])
      [ input ]
  in
  Alcotest.(check bool) "doubled" true
    (Value.equal (List.hd r.Engine.Local.rows).(0) (Value.Int 6))

let test_hash_join_inner () =
  let l = rset [ ca ] (rows_of [ [ Value.Int 1 ]; [ Value.Int 2 ]; [ Value.Int 2 ] ]) in
  let r = rset [ cx; cy ] (rows_of [ [ Value.Int 2; Value.Int 20 ]; [ Value.Int 3; Value.Int 30 ] ]) in
  let j =
    exec
      (Memo.Physop.Hash_join
         { kind = Relop.Inner; pred = Expr.eq (Expr.Col ca) (Expr.Col cx) })
      [ l; r ]
  in
  Alcotest.(check int) "two matches" 2 (List.length j.Engine.Local.rows);
  Alcotest.(check int) "combined layout" 3 (List.length j.Engine.Local.layout)

let test_hash_join_null_keys_no_match () =
  let l = rset [ ca ] (rows_of [ [ Value.Null ] ]) in
  let r = rset [ cx ] (rows_of [ [ Value.Null ] ]) in
  let j =
    exec
      (Memo.Physop.Hash_join
         { kind = Relop.Inner; pred = Expr.eq (Expr.Col ca) (Expr.Col cx) })
      [ l; r ]
  in
  Alcotest.(check int) "null never equals null" 0 (List.length j.Engine.Local.rows)

let test_semi_anti () =
  let l = rset [ ca ] (rows_of [ [ Value.Int 1 ]; [ Value.Int 2 ]; [ Value.Int 3 ] ]) in
  let r = rset [ cx ] (rows_of [ [ Value.Int 2 ]; [ Value.Int 2 ] ]) in
  let pred = Expr.eq (Expr.Col ca) (Expr.Col cx) in
  let semi = exec (Memo.Physop.Hash_join { kind = Relop.Semi; pred }) [ l; r ] in
  Alcotest.(check int) "semi: one row, no duplicates" 1 (List.length semi.Engine.Local.rows);
  let anti = exec (Memo.Physop.Hash_join { kind = Relop.Anti_semi; pred }) [ l; r ] in
  Alcotest.(check int) "anti: two rows" 2 (List.length anti.Engine.Local.rows)

let test_left_outer () =
  let l = rset [ ca ] (rows_of [ [ Value.Int 1 ]; [ Value.Int 2 ] ]) in
  let r = rset [ cx; cy ] (rows_of [ [ Value.Int 1; Value.Int 10 ] ]) in
  let j =
    exec
      (Memo.Physop.Hash_join
         { kind = Relop.Left_outer; pred = Expr.eq (Expr.Col ca) (Expr.Col cx) })
      [ l; r ]
  in
  Alcotest.(check int) "both left rows survive" 2 (List.length j.Engine.Local.rows);
  let unmatched = List.find (fun row -> Value.equal row.(0) (Value.Int 2)) j.Engine.Local.rows in
  Alcotest.(check bool) "null extension" true (Value.is_null unmatched.(2))

let test_nl_join_inequality () =
  let l = rset [ ca ] (rows_of [ [ Value.Int 1 ]; [ Value.Int 5 ] ]) in
  let r = rset [ cx ] (rows_of [ [ Value.Int 3 ] ]) in
  let j =
    exec
      (Memo.Physop.Nl_join
         { kind = Relop.Inner; pred = Expr.Bin (Expr.Lt, Expr.Col ca, Expr.Col cx) })
      [ l; r ]
  in
  Alcotest.(check int) "inequality join" 1 (List.length j.Engine.Local.rows)

let test_aggregate_grouped () =
  let input =
    rset [ ca; cb ]
      (rows_of
         [ [ Value.Int 1; Value.Int 10 ]; [ Value.Int 1; Value.Int 5 ];
           [ Value.Int 2; Value.Int 7 ] ])
  in
  let aggs =
    [ { Expr.agg_out; agg_func = Expr.Sum; agg_arg = Some (Expr.Col cb); agg_distinct = false };
      { Expr.agg_out = cnt_out; agg_func = Expr.Count_star; agg_arg = None; agg_distinct = false } ]
  in
  let r = exec (Memo.Physop.Hash_agg { keys = [ ca ]; aggs }) [ input ] in
  Alcotest.(check int) "two groups" 2 (List.length r.Engine.Local.rows);
  let g1 = List.find (fun row -> Value.equal row.(0) (Value.Int 1)) r.Engine.Local.rows in
  Alcotest.(check bool) "sum" true (Value.equal g1.(1) (Value.Int 15));
  Alcotest.(check bool) "count" true (Value.equal g1.(2) (Value.Int 2))

let test_aggregate_scalar_empty () =
  let input = rset [ cb ] [] in
  let aggs =
    [ { Expr.agg_out; agg_func = Expr.Sum; agg_arg = Some (Expr.Col cb); agg_distinct = false };
      { Expr.agg_out = cnt_out; agg_func = Expr.Count_star; agg_arg = None; agg_distinct = false } ]
  in
  let r = exec (Memo.Physop.Hash_agg { keys = []; aggs }) [ input ] in
  Alcotest.(check int) "one row over empty input" 1 (List.length r.Engine.Local.rows);
  let row = List.hd r.Engine.Local.rows in
  Alcotest.(check bool) "sum is NULL" true (Value.is_null row.(0));
  Alcotest.(check bool) "count is 0" true (Value.equal row.(1) (Value.Int 0))

let test_aggregate_distinct () =
  let input = rset [ cb ] (rows_of [ [ Value.Int 5 ]; [ Value.Int 5 ]; [ Value.Int 7 ] ]) in
  let aggs =
    [ { Expr.agg_out = cnt_out; agg_func = Expr.Count; agg_arg = Some (Expr.Col cb);
        agg_distinct = true } ]
  in
  let r = exec (Memo.Physop.Hash_agg { keys = []; aggs }) [ input ] in
  Alcotest.(check bool) "count distinct" true
    (Value.equal (List.hd r.Engine.Local.rows).(0) (Value.Int 2))

let test_aggregate_nulls_skipped () =
  let input = rset [ cb ] (rows_of [ [ Value.Null ]; [ Value.Int 3 ] ]) in
  let aggs =
    [ { Expr.agg_out; agg_func = Expr.Avg; agg_arg = Some (Expr.Col cb); agg_distinct = false } ]
  in
  let r = exec (Memo.Physop.Hash_agg { keys = []; aggs }) [ input ] in
  Alcotest.(check bool) "avg skips nulls" true
    (Value.equal (List.hd r.Engine.Local.rows).(0) (Value.Float 3.))

let test_sort_limit () =
  let input = rset [ ca ] (rows_of [ [ Value.Int 3 ]; [ Value.Int 1 ]; [ Value.Int 2 ] ]) in
  let keys = [ { Relop.key = Expr.Col ca; desc = true } ] in
  let r = exec (Memo.Physop.Sort_op { keys; limit = Some 2 }) [ input ] in
  Alcotest.(check bool) "desc order with limit" true
    (List.map (fun row -> row.(0)) r.Engine.Local.rows = [ Value.Int 3; Value.Int 2 ])

(* -- DMS runtime -- *)

let mini_appliance () =
  let sh = Catalog.Shell_db.create ~node_count:4 in
  let schema =
    Schema.make "t" [ Schema.column "k" Types.Tint; Schema.column "v" Types.Tint ]
  in
  ignore (Shell_db.add_table sh schema (Distribution.Hash_partitioned [ "k" ]));
  let app = Engine.Appliance.create sh in
  let rows = List.init 100 (fun i -> [| Value.Int i; Value.Int (i * 10) |]) in
  Engine.Appliance.load_table app "t" rows;
  (app, rows)

let test_load_partitions_disjoint () =
  let app, rows = mini_appliance () in
  let per_node = List.init 4 (fun i -> Engine.Appliance.node_table app i "t") in
  Alcotest.(check int) "all rows stored" (List.length rows)
    (List.fold_left (fun a l -> a + List.length l) 0 per_node);
  (* rows route by hash of k: re-hashing each row must give its node *)
  List.iteri
    (fun node l ->
       List.iter
         (fun (row : Value.t array) ->
            Alcotest.(check int) "row on right node" node
              (Engine.Appliance.route_hash [ row.(0) ] mod 4))
         l)
    per_node

let dstream_of app layout rows_per_node dist =
  ignore app;
  let rs rows = Engine.Rset.Rows { Engine.Local.layout; rows } in
  { Engine.Appliance.layout; per_node = Array.map rs rows_per_node;
    control = rs []; dist }

let shard_rows rs = (Engine.Rset.to_local rs).Engine.Local.rows

let test_shuffle_routes_consistently () =
  let app, _ = mini_appliance () in
  let input =
    dstream_of app [ ca; cb ]
      (Array.init 4 (fun n -> List.init 10 (fun i -> [| Value.Int ((n * 10) + i); Value.Int 0 |])))
      (Dms.Distprop.Hashed [ cb ])
  in
  let out = Engine.Appliance.run_move app (Dms.Op.Shuffle [ ca ]) ~cols:[ ca; cb ] input in
  Alcotest.(check int) "all 40 rows survive" 40
    (Array.fold_left (fun a rs -> a + Engine.Rset.count rs) 0 out.Engine.Appliance.per_node);
  Array.iteri
    (fun node rs ->
       List.iter
         (fun (row : Value.t array) ->
            Alcotest.(check int) "routed by hash" node
              (Engine.Appliance.route_hash [ row.(0) ] mod 4))
         (shard_rows rs))
    out.Engine.Appliance.per_node

let test_broadcast_replicates () =
  let app, _ = mini_appliance () in
  let input =
    dstream_of app [ ca ]
      (Array.init 4 (fun n -> [ [| Value.Int n |] ]))
      (Dms.Distprop.Hashed [ ca ])
  in
  let out = Engine.Appliance.run_move app Dms.Op.Broadcast ~cols:[ ca ] input in
  Array.iter
    (fun rs -> Alcotest.(check int) "full copy everywhere" 4 (Engine.Rset.count rs))
    out.Engine.Appliance.per_node

let test_trim_keeps_own () =
  let app, _ = mini_appliance () in
  let full = List.init 20 (fun i -> [| Value.Int i |]) in
  let input =
    dstream_of app [ ca ] (Array.make 4 full) Dms.Distprop.Replicated
  in
  let before_net = app.Engine.Appliance.account.Engine.Appliance.bytes_moved in
  let out = Engine.Appliance.run_move app (Dms.Op.Trim [ ca ]) ~cols:[ ca ] input in
  Alcotest.(check int) "exactly one copy survives" 20
    (Array.fold_left (fun a rs -> a + Engine.Rset.count rs) 0 out.Engine.Appliance.per_node);
  Alcotest.(check (float 0.)) "no network traffic" before_net
    app.Engine.Appliance.account.Engine.Appliance.bytes_moved

let test_partition_move_gathers () =
  let app, _ = mini_appliance () in
  let input =
    dstream_of app [ ca ]
      (Array.init 4 (fun n -> [ [| Value.Int n |] ]))
      (Dms.Distprop.Hashed [ ca ])
  in
  let out = Engine.Appliance.run_move app Dms.Op.Partition_move ~cols:[ ca ] input in
  Alcotest.(check int) "all on control" 4 (Engine.Rset.count out.Engine.Appliance.control);
  Alcotest.(check bool) "single node dist" true
    (out.Engine.Appliance.dist = Dms.Distprop.Single_node)

let test_move_projects_columns () =
  let app, _ = mini_appliance () in
  let input =
    dstream_of app [ ca; cb; cc ]
      (Array.make 4 [ [| Value.Int 1; Value.Int 2; Value.String "wide" |] ])
      (Dms.Distprop.Hashed [ ca ])
  in
  let out = Engine.Appliance.run_move app (Dms.Op.Shuffle [ ca ]) ~cols:[ ca ] input in
  Alcotest.(check (list int)) "projected layout" [ ca ] out.Engine.Appliance.layout

let test_accounting_advances () =
  let app, _ = mini_appliance () in
  let input =
    dstream_of app [ ca ]
      (Array.init 4 (fun n -> List.init 50 (fun i -> [| Value.Int ((n * 100) + i) |])))
      (Dms.Distprop.Hashed [ ca ])
  in
  Engine.Appliance.reset_account app;
  ignore (Engine.Appliance.run_move app (Dms.Op.Shuffle [ ca ]) ~cols:[ ca ] input);
  let a = app.Engine.Appliance.account in
  Alcotest.(check bool) "sim time advanced" true (a.Engine.Appliance.sim_time > 0.);
  Alcotest.(check bool) "bytes accounted" true (a.Engine.Appliance.bytes_moved > 0.);
  Alcotest.(check int) "one move" 1 a.Engine.Appliance.moves;
  Alcotest.(check bool) "calibration samples recorded" true
    (a.Engine.Appliance.reader_hash_samples <> [])

let suite =
  [ t "filter" test_filter;
    t "filter treats UNKNOWN as false" test_filter_null_is_false;
    t "compute" test_compute;
    t "hash join inner" test_hash_join_inner;
    t "null join keys never match" test_hash_join_null_keys_no_match;
    t "semi / anti joins" test_semi_anti;
    t "left outer join" test_left_outer;
    t "nested-loop inequality join" test_nl_join_inequality;
    t "grouped aggregation" test_aggregate_grouped;
    t "scalar aggregate over empty input" test_aggregate_scalar_empty;
    t "COUNT DISTINCT" test_aggregate_distinct;
    t "aggregates skip NULLs" test_aggregate_nulls_skipped;
    t "sort with limit" test_sort_limit;
    t "loading partitions disjointly" test_load_partitions_disjoint;
    t "shuffle routes consistently" test_shuffle_routes_consistently;
    t "broadcast replicates" test_broadcast_replicates;
    t "trim keeps own rows, no network" test_trim_keeps_own;
    t "partition move gathers" test_partition_move_gathers;
    t "moves project to carried columns" test_move_projects_columns;
    t "accounting advances" test_accounting_advances ]
