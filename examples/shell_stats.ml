(* The shell database's "single system image" (paper sec. 2.2): local
   statistics are computed on each node and merged into global statistics,
   which drive all cardinality estimation. This example quantifies what the
   merge preserves and what it loses.

   Run with: dune exec examples/shell_stats.exe *)

open Catalog

let () =
  let nodes = 8 in
  let db = Tpch.Datagen.generate 0.01 in
  let orders = Tpch.Datagen.rows db "orders" in
  let schema = fst (List.find (fun (s, _) -> s.Schema.name = "orders") Tpch.Schema.layout) in

  (* hash-partition orders on o_orderkey the way the appliance would *)
  let parts = Array.make nodes [] in
  List.iter
    (fun (row : Value.t array) ->
       let n = (match row.(0) with Value.Int k -> abs (Hashtbl.hash k) | _ -> 0) mod nodes in
       parts.(n) <- row :: parts.(n))
    orders;

  Printf.printf "orders: %d rows across %d nodes (%s)\n\n" (List.length orders) nodes
    (String.concat ", "
       (Array.to_list (Array.map (fun l -> string_of_int (List.length l)) parts)));

  (* per-node local statistics, then the global merge *)
  let locals = Array.to_list (Array.map (Tbl_stats.of_rows schema) parts) in
  let merged = Tbl_stats.merge locals in
  let exact = Tbl_stats.of_rows schema orders in

  Printf.printf "%-14s %-12s %-12s %-12s\n" "column" "exact ndv" "merged ndv" "ndv error";
  List.iter
    (fun col ->
       let e = (Option.get (Tbl_stats.col exact col)).Col_stats.ndv in
       let m = (Option.get (Tbl_stats.col merged col)).Col_stats.ndv in
       Printf.printf "%-14s %-12.0f %-12.0f %-12.2f\n" col e m (m /. Float.max 1. e))
    [ "o_orderkey"; "o_custkey"; "o_orderdate"; "o_orderstatus" ];

  (* selectivity probes against the merged histogram *)
  let probe col v =
    let h s = Option.get (Option.get (Tbl_stats.col s col)).Col_stats.histogram in
    let fraction s = Histogram.rows_le (h s) v /. Histogram.non_null_rows (h s) in
    (fraction exact, fraction merged)
  in
  print_newline ();
  Printf.printf "%-34s %-12s %-12s\n" "range probe" "exact frac" "merged frac";
  List.iter
    (fun (label, col, v) ->
       let e, m = probe col v in
       Printf.printf "%-34s %-12.3f %-12.3f\n" label e m)
    [ ("o_custkey <= 500", "o_custkey", Value.Int 500);
      ("o_orderdate <= 1994-06-30", "o_orderdate",
       Value.Date (Value.days_from_civil ~y:1994 ~m:6 ~d:30));
      ("o_totalprice <= 100000", "o_totalprice", Value.Float 100_000.) ];

  print_newline ();
  print_endline
    "row counts and range fractions survive the merge almost exactly; NDV\n\
     drifts (over- or under-counted depending on how per-node value sets\n\
     overlap), which is the price the paper accepts for compiling against\n\
     a single shell database."
