(* The paper's sec. 3.2 argument, run live: the best SERIAL join order is
   not the best PARALLEL one, because only the parallel optimizer accounts
   for the co-location of Orders and Lineitem (both hash-partitioned on
   orderkey).

   Run with: dune exec examples/join_colocation.exe *)

let () =
  let w = Opdw.Workload.tpch ~node_count:8 ~sf:0.01 () in
  let q = Option.get (Tpch.Queries.find "P2") in
  Printf.printf "== SQL ==\n%s\n\n" q.Tpch.Queries.sql;

  let r = Opdw.optimize w.Opdw.Workload.shell q.Tpch.Queries.sql in
  let reg = r.Opdw.memo.Memo.reg in

  print_endline "== best SERIAL plan (partitioning-unaware) ==";
  let serial = Option.get r.Opdw.serial.Serialopt.Optimizer.best in
  print_endline (Serialopt.Plan.to_string reg serial);

  print_endline "\n== that plan, parallelized greedily (the baseline) ==";
  let baseline = Option.get r.Opdw.baseline_plan in
  print_endline (Pdwopt.Pplan.to_string reg baseline);

  print_endline "\n== the PDW optimizer's plan (searches the whole space) ==";
  let pdw = Opdw.plan r in
  print_endline (Pdwopt.Pplan.to_string reg pdw);

  Printf.printf "\nmodelled DMS cost: baseline %.4gs vs PDW %.4gs  (%.1fx better)\n"
    baseline.Pdwopt.Pplan.dms_cost pdw.Pdwopt.Pplan.dms_cost
    (baseline.Pdwopt.Pplan.dms_cost /. Float.max 1e-12 pdw.Pdwopt.Pplan.dms_cost);

  (* execute both and compare simulated response times *)
  let app = w.Opdw.Workload.app in
  let time plan =
    Engine.Appliance.reset_account app;
    let res = Engine.Appliance.run_pplan app plan in
    (res, app.Engine.Appliance.account.Engine.Appliance.sim_time)
  in
  let res_b, t_b = time baseline in
  let res_p, t_p = time pdw in
  Printf.printf "simulated response time: baseline %.4gs vs PDW %.4gs\n" t_b t_p;

  let cols = List.map snd (Opdw.output_columns r) in
  Printf.printf "both plans agree on the result (%d rows): %b\n"
    (List.length res_p.Engine.Local.rows)
    (Engine.Local.canonical ~cols res_b = Engine.Local.canonical ~cols res_p)
