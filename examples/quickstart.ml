(* Quickstart: build a shell database, optimize a query, inspect the
   distributed plan and the DSQL steps, execute it on the simulated
   appliance, and check it against the single-node reference.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. A shell database describing an 8-node appliance with a custom
     schema: sales hash-partitioned on its key, stores replicated. *)
  let open Catalog in
  let shell = Shell_db.create ~node_count:8 in
  let sales =
    Schema.make "sales"
      [ Schema.column ~is_pk:true "sale_id" Types.Tint;
        Schema.column ~references:("stores", "store_id") "store_id" Types.Tint;
        Schema.column "amount" Types.Tfloat;
        Schema.column "sold_on" Types.Tdate ]
  in
  let stores =
    Schema.make "stores"
      [ Schema.column ~is_pk:true "store_id" Types.Tint;
        Schema.column ~width:20 "city" Types.Tstring ]
  in
  ignore (Shell_db.add_table shell sales (Distribution.Hash_partitioned [ "sale_id" ]));
  ignore (Shell_db.add_table shell stores Distribution.Replicated);

  (* 2. Generate some data and load the appliance; compute global statistics
     the PDW way (per-node local stats merged into the shell db). *)
  let app = Engine.Appliance.create shell in
  let day d = Value.Date (Value.days_from_civil ~y:2025 ~m:1 ~d:1 + d) in
  let sales_rows =
    List.init 50_000 (fun i ->
        [| Value.Int i; Value.Int (i mod 200);
           Value.Float (float_of_int ((i * 37) mod 500));
           day (i mod 365) |])
  in
  let store_rows =
    List.init 200 (fun i -> [| Value.Int i; Value.String (Printf.sprintf "city%02d" (i mod 40)) |])
  in
  Engine.Appliance.load_table app "sales" sales_rows;
  Engine.Appliance.load_table app "stores" store_rows;
  Shell_db.set_stats shell "sales"
    (Tbl_stats.merge
       (List.init 8 (fun n -> Tbl_stats.of_rows sales (Engine.Appliance.node_table app n "sales"))));
  Shell_db.set_stats shell "stores" (Tbl_stats.of_rows stores store_rows);

  (* 3. Optimize a query through the full PDW pipeline. *)
  let sql =
    "SELECT city, COUNT(*) AS sales_count, SUM(amount) AS revenue \
     FROM sales, stores \
     WHERE sales.store_id = stores.store_id AND sold_on >= '2025-06-01' \
     GROUP BY city \
     ORDER BY revenue DESC"
  in
  let r = Opdw.optimize shell sql in
  print_endline "== parallel plan and DSQL steps ==";
  print_endline (Opdw.explain r);

  (* 4. Execute distributed, compare with the serial reference. *)
  let result = Opdw.run app r in
  Printf.printf "\n== first rows of the result (%d total) ==\n"
    (List.length result.Engine.Local.rows);
  List.iteri
    (fun i row ->
       if i < 5 then
         print_endline
           (String.concat " | "
              (List.map Value.to_string (Array.to_list row))))
    result.Engine.Local.rows;
  let reference = Option.get (Opdw.run_reference app r) in
  let cols = List.map snd (Opdw.output_columns r) in
  Printf.printf "\ndistributed == single-node reference: %b\n"
    (Engine.Local.canonical ~cols result = Engine.Local.canonical ~cols reference);
  Printf.printf "data movements: %d, modelled DMS cost: %.4gs\n"
    (Pdwopt.Pplan.move_count (Opdw.plan r))
    (Opdw.plan r).Pdwopt.Pplan.dms_cost
