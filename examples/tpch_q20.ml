(* Reproduce the paper's Fig. 7 walk-through: TPC-H Q20 end to end.

   Shows the decorrelated logical tree (sub-query removal, sub-query to
   join transformation, transitivity closure -> early filtering of
   lineitem by part), the distributed plan with its data movements, the
   generated DSQL steps, and the executed result.

   Run with: dune exec examples/tpch_q20.exe *)

let () =
  let w = Opdw.Workload.tpch ~node_count:8 ~sf:0.01 () in
  let q = Option.get (Tpch.Queries.find "Q20") in
  Printf.printf "== SQL ==\n%s\n\n" q.Tpch.Queries.sql;

  let r = Opdw.optimize w.Opdw.Workload.shell q.Tpch.Queries.sql in

  print_endline "== normalized logical tree (after decorrelation) ==";
  print_endline
    (Algebra.Relop.to_string r.Opdw.algebrized.Algebra.Algebrizer.reg r.Opdw.normalized);

  Printf.printf "\n== serial MEMO: %d groups, %d expressions (XML interchange: %d bytes) ==\n"
    (Memo.ngroups r.Opdw.memo) (Memo.total_exprs r.Opdw.memo)
    (match r.Opdw.memo_xml with Some x -> String.length x | None -> 0);

  print_endline "\n== distributed plan chosen by the PDW optimizer ==";
  print_endline (Pdwopt.Pplan.to_string r.Opdw.memo.Memo.reg (Opdw.plan r));

  print_endline "\n== DSQL plan (compare with the paper's Fig. 7) ==";
  print_endline (Dsql.Generate.to_string r.Opdw.dsql);

  let result = Opdw.run w.Opdw.Workload.app r in
  Printf.printf "\n== result: %d suppliers ==\n" (List.length result.Engine.Local.rows);
  List.iter
    (fun row ->
       print_endline
         (String.concat " | " (List.map Catalog.Value.to_string (Array.to_list row))))
    result.Engine.Local.rows;

  (* sanity: distributed execution matches the single-node reference *)
  let reference = Option.get (Opdw.run_reference w.Opdw.Workload.app r) in
  let cols = List.map snd (Opdw.output_columns r) in
  Printf.printf "\ndistributed == reference: %b\n"
    (Engine.Local.canonical ~cols result = Engine.Local.canonical ~cols reference)
